#include "core/checkers.hpp"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/assert.hpp"
#include "obs/trace.hpp"

namespace timedc {
namespace {

// Checker telemetry vocabulary: every check.* event carries the model in
// `a` and one of these codes in `b` (prune / fastpath) or `op` (verdict).
constexpr std::int64_t kModelLin = 0;
constexpr std::int64_t kModelSc = 1;
constexpr std::int64_t kModelCc = 2;
constexpr std::int64_t kPruneThinAir = 0;
constexpr std::int64_t kPruneBadPattern = 1;
constexpr std::int64_t kPruneCyclicCausal = 2;
constexpr std::int64_t kPruneNodeBudget = 3;
constexpr std::int64_t kFastSeedOrder = 0;
constexpr std::int64_t kFastPrefilter = 1;

void trace_enter(const SearchLimits& limits, std::int64_t model,
                 std::size_t ops) {
  if (limits.tracer == nullptr) return;
  limits.tracer->emit(TraceEventType::kCheckEnter, SimTime::zero(), SiteId{0},
                      kNoObject, 0, model, static_cast<std::int64_t>(ops));
}

void trace_prune(const SearchLimits& limits, std::int64_t model,
                 std::int64_t reason) {
  if (limits.tracer == nullptr) return;
  limits.tracer->emit(TraceEventType::kCheckPrune, SimTime::zero(), SiteId{0},
                      kNoObject, 0, model, reason);
}

void trace_fastpath(const SearchLimits& limits, std::int64_t model,
                    std::int64_t reason) {
  if (limits.tracer == nullptr) return;
  limits.tracer->emit(TraceEventType::kCheckFastPath, SimTime::zero(),
                      SiteId{0}, kNoObject, 0, model, reason);
}

void trace_verdict(const SearchLimits& limits, std::int64_t model, Verdict v,
                   std::uint64_t nodes) {
  if (limits.tracer == nullptr) return;
  if (v == Verdict::kLimit) trace_prune(limits, model, kPruneNodeBudget);
  limits.tracer->emit(TraceEventType::kCheckVerdict, SimTime::zero(),
                      SiteId{0}, kNoObject,
                      static_cast<std::uint64_t>(v), model,
                      static_cast<std::int64_t>(nodes));
}

/// Backtracking search for a legal serialization of a subset of operations
/// under a precedence partial order, with memoization of failed states.
///
/// Precedence constraints are bitset predecessor rows over the subset's
/// local indices: ready(j) is a word-parallel subset test against the
/// placed bitset, so adding the (dense) transitive closure of a constraint
/// order costs nothing per node. The memo key packs the placed bitset with
/// an incrementally-maintained per-object value fingerprint — exact for
/// subsets of <= 64 operations (one word of placed bits), hashed above.
class Searcher {
 public:
  Searcher(const History& h, const std::vector<OpIndex>& subset,
           const SearchLimits& limits)
      : h_(h), ops_(subset), limits_(limits) {
    const std::size_t m = ops_.size();
    words_ = (m + 63) / 64;
    preds_.assign(m, Row(words_, 0));
    local_of_.clear();
    for (std::size_t j = 0; j < m; ++j) local_of_[ops_[j].value] = j;
  }

  /// Declare that history op `a` must precede history op `b` (both must be
  /// in the subset; silently ignored otherwise).
  void must_precede(OpIndex a, OpIndex b) {
    const auto ia = local_of_.find(a.value);
    const auto ib = local_of_.find(b.value);
    if (ia == local_of_.end() || ib == local_of_.end()) return;
    set_bit(preds_[ib->second], ia->second);
  }

  /// Effective-time precedence over the whole subset: every op must come
  /// after all ops with strictly smaller effective time. Encoded as dense
  /// predecessor rows via one sorted prefix sweep (equal times unordered).
  void must_respect_effective_time() {
    const std::size_t m = ops_.size();
    std::vector<std::size_t> by_time(m);
    for (std::size_t j = 0; j < m; ++j) by_time[j] = j;
    std::sort(by_time.begin(), by_time.end(), [&](std::size_t a, std::size_t b) {
      const SimTime ta = h_.op(ops_[a]).time, tb = h_.op(ops_[b]).time;
      return ta != tb ? ta < tb : a < b;
    });
    Row earlier(words_, 0);
    std::size_t k = 0;
    while (k < m) {
      std::size_t e = k;
      const SimTime t = h_.op(ops_[by_time[k]]).time;
      while (e < m && h_.op(ops_[by_time[e]]).time == t) ++e;
      for (std::size_t i = k; i < e; ++i) or_into(preds_[by_time[i]], earlier);
      for (std::size_t i = k; i < e; ++i) set_bit(earlier, by_time[i]);
      k = e;
    }
  }

  /// Seed-order pass alone: place the subset in effective-time order and
  /// accept iff that is a legal, constraint-respecting serialization —
  /// O(n log n), no backtracking. nullopt = inconclusive (run() decides).
  std::optional<CheckResult> try_seed_order() {
    prepare();
    CheckResult result;
    if (seed_attempt()) {
      result.verdict = Verdict::kYes;
      result.fast_path = true;
      result.witness.reserve(ops_.size());
      for (std::size_t j : order_) result.witness.push_back(ops_[j]);
      return result;
    }
    return std::nullopt;
  }

  CheckResult run(bool try_seed) {
    prepare();
    CheckResult result;
    if (try_seed && seed_attempt()) {
      result.verdict = Verdict::kYes;
      result.fast_path = true;
      result.witness.reserve(ops_.size());
      for (std::size_t j : order_) result.witness.push_back(ops_[j]);
      return result;
    }

    if (dfs()) {
      result.verdict = Verdict::kYes;
      result.witness.reserve(ops_.size());
      for (std::size_t j : order_) result.witness.push_back(ops_[j]);
    } else {
      result.verdict = limit_hit_ ? Verdict::kLimit : Verdict::kNo;
    }
    result.nodes = nodes_;
    return result;
  }

 private:
  using Row = std::vector<std::uint64_t>;

  static bool get_bit(const Row& row, std::size_t i) {
    return (row[i >> 6] >> (i & 63)) & 1;
  }
  static void set_bit(Row& row, std::size_t i) { row[i >> 6] |= 1ULL << (i & 63); }
  static void clear_bit(Row& row, std::size_t i) { row[i >> 6] &= ~(1ULL << (i & 63)); }
  static void or_into(Row& dst, const Row& src) {
    for (std::size_t k = 0; k < dst.size(); ++k) dst[k] |= src[k];
  }

  void prepare() {
    const std::size_t m = ops_.size();
    reset_state();
    // Deterministic candidate heuristic: try operations in effective-time
    // order first (ties by subset position); realistic histories almost
    // always admit a witness close to the real-time order, which keeps the
    // search shallow.
    try_order_.resize(m);
    for (std::size_t j = 0; j < m; ++j) try_order_[j] = j;
    std::sort(try_order_.begin(), try_order_.end(), [&](std::size_t a, std::size_t b) {
      const SimTime ta = h_.op(ops_[a]).time, tb = h_.op(ops_[b]).time;
      return ta != tb ? ta < tb : a < b;
    });
  }

  void reset_state() {
    placed_.assign(words_, 0);
    num_placed_ = 0;
    order_.clear();
    order_.reserve(ops_.size());
    current_.clear();
    fingerprint_ = 0;
    nodes_ = 0;
    limit_hit_ = false;
    failed_states_.clear();
  }

  /// The O(n log n) fast path: place the operations in effective-time order
  /// outright. Only accepts (returns a complete legal, constraint-respecting
  /// order); any failure falls through to the full search.
  bool seed_attempt() {
    for (std::size_t j : try_order_) {
      if (!preds_ready(j)) { reset_state(); return false; }
      const Operation& op = h_.op(ops_[j]);
      if (op.is_read()) {
        const auto it = current_.find(op.object);
        const Value v = it == current_.end() ? kInitialValue : it->second;
        if (v != op.value) { reset_state(); return false; }
      } else {
        apply_write(op);
      }
      place(j);
    }
    return true;
  }

  bool dfs() {
    if (num_placed_ == ops_.size()) return true;
    if (++nodes_ > limits_.max_nodes) {
      limit_hit_ = true;
      return false;
    }
    const StateKey key = state_key();
    if (failed_states_.contains(key)) return false;

    for (std::size_t j : try_order_) {
      if (get_bit(placed_, j)) continue;
      if (!preds_ready(j)) continue;
      const Operation& op = h_.op(ops_[j]);
      if (op.is_read()) {
        const auto it = current_.find(op.object);
        const Value v = it == current_.end() ? kInitialValue : it->second;
        if (v != op.value) continue;
        place(j);
        if (dfs()) return true;
        unplace(j);
      } else {
        const auto it = current_.find(op.object);
        const bool had = it != current_.end();
        const Value prev = had ? it->second : kInitialValue;
        place(j);
        apply_write(op);
        if (dfs()) return true;
        undo_write(op, had, prev);
        unplace(j);
      }
      if (limit_hit_) return false;
    }
    failed_states_.insert(key);
    return false;
  }

  bool preds_ready(std::size_t j) const {
    const Row& need = preds_[j];
    for (std::size_t k = 0; k < words_; ++k) {
      if (need[k] & ~placed_[k]) return false;
    }
    return true;
  }

  void place(std::size_t j) {
    set_bit(placed_, j);
    ++num_placed_;
    order_.push_back(j);
  }

  void unplace(std::size_t j) {
    clear_bit(placed_, j);
    --num_placed_;
    order_.pop_back();
  }

  void apply_write(const Operation& op) {
    const auto it = current_.find(op.object);
    if (it != current_.end()) {
      fingerprint_ ^= value_mix(op.object, it->second);
      it->second = op.value;
    } else {
      current_.emplace(op.object, op.value);
    }
    fingerprint_ ^= value_mix(op.object, op.value);
  }

  void undo_write(const Operation& op, bool had, Value prev) {
    fingerprint_ ^= value_mix(op.object, op.value);
    if (had) {
      fingerprint_ ^= value_mix(op.object, prev);
      current_[op.object] = prev;
    } else {
      current_.erase(op.object);
    }
  }

  /// Mix of one (object, current value) pair; the per-object map fingerprint
  /// is the XOR over all pairs, maintained incrementally by apply/undo.
  static std::uint64_t value_mix(ObjectId obj, Value val) {
    std::uint64_t e = (static_cast<std::uint64_t>(obj.value) << 32) ^
                      static_cast<std::uint64_t>(val.value);
    e *= 0xbf58476d1ce4e5b9ULL;
    e ^= e >> 29;
    e *= 0x94d049bb133111ebULL;
    e ^= e >> 32;
    return e;
  }

  /// (placed set, per-object current value). Failure from a state is a
  /// function of exactly these two, so memoizing on them is sound. For
  /// subsets of <= 64 ops the placed half is the exact bitmask; above, it
  /// is a hash of the placed words.
  struct StateKey {
    std::uint64_t placed;
    std::uint64_t values;
    bool operator==(const StateKey&) const = default;
  };
  struct StateKeyHash {
    std::size_t operator()(const StateKey& k) const {
      std::uint64_t h = k.placed * 0x9e3779b97f4a7c15ULL;
      h ^= k.values + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      return static_cast<std::size_t>(h);
    }
  };

  StateKey state_key() const {
    if (words_ == 1) return StateKey{placed_[0], fingerprint_};
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (std::uint64_t word : placed_) {
      hash ^= word + 0x9e3779b97f4a7c15ULL + (hash << 6) + (hash >> 2);
    }
    return StateKey{hash, fingerprint_};
  }

  const History& h_;
  std::vector<OpIndex> ops_;
  SearchLimits limits_;
  std::size_t words_ = 1;
  std::unordered_map<std::uint32_t, std::size_t> local_of_;
  std::vector<Row> preds_;
  std::vector<std::size_t> try_order_;

  Row placed_;
  std::size_t num_placed_ = 0;
  std::vector<std::size_t> order_;
  std::unordered_map<ObjectId, Value> current_;
  std::uint64_t fingerprint_ = 0;
  std::uint64_t nodes_ = 0;
  bool limit_hit_ = false;
  std::unordered_set<StateKey, StateKeyHash> failed_states_;
};

std::vector<OpIndex> all_ops(const History& h) {
  std::vector<OpIndex> ops;
  ops.reserve(h.size());
  for (std::uint32_t i = 0; i < h.size(); ++i) ops.push_back(OpIndex{i});
  return ops;
}

void add_program_order(const History& h, Searcher& searcher) {
  for (std::size_t s = 0; s < h.num_sites(); ++s) {
    const auto& ops = h.site_ops(SiteId{static_cast<std::uint32_t>(s)});
    for (std::size_t k = 1; k < ops.size(); ++k)
      searcher.must_precede(ops[k - 1], ops[k]);
  }
}

/// The forced-order constraint graph: precedence constraints every *legal*
/// serialization of the subset must satisfy, derived once per history from
/// the forced reads-from relation and the transitive closure `co` of
/// (program order ∪ reads-from). For a read r with source write w and any
/// other write b to the same object:
///   * w → r            (a read follows its source),
///   * b → w  if b → r in co   (b cannot land between w and r),
///   * r → b  if w → b in co   (ditto, from the other side),
///   * r → b  for all b when r reads the initial value.
/// Sound for LIN, SC and CC searches alike: co-edges hold in every legal
/// serialization that respects program order or causality, and the derived
/// edges only encode "no write may sit between a read and its source".
void add_forced_order_edges(const History& h, const std::vector<OpIndex>& subset,
                            const CausalOrder& co, Searcher& searcher) {
  for (OpIndex r : subset) {
    const Operation& op = h.op(r);
    if (!op.is_read()) continue;
    const auto src = h.forced_source(r);
    for (OpIndex b : h.writes_to(op.object)) {
      if (!src) {
        searcher.must_precede(r, b);
        continue;
      }
      if (b == *src) {
        searcher.must_precede(b, r);
        continue;
      }
      if (co.precedes(b, r)) searcher.must_precede(b, *src);
      if (co.precedes(*src, b)) searcher.must_precede(r, b);
    }
  }
}

}  // namespace

CheckResult find_serialization(const History& h,
                               const std::vector<OpIndex>& subset,
                               const CausalOrder* causal_constraint,
                               bool program_order_constraint,
                               bool effective_time_constraint,
                               const SearchLimits& limits) {
  Searcher searcher(h, subset, limits);
  if (program_order_constraint) add_program_order(h, searcher);
  if (effective_time_constraint) searcher.must_respect_effective_time();
  if (causal_constraint != nullptr) {
    for (OpIndex a : subset) {
      for (OpIndex b : subset) {
        if (a != b && causal_constraint->precedes(a, b)) searcher.must_precede(a, b);
      }
    }
  }
  return searcher.run(limits.fast_paths);
}

namespace {

}  // namespace

CheckResult check_lin(const History& h, const SearchLimits& limits) {
  trace_enter(limits, kModelLin, h.operations().size());
  if (h.has_thin_air_read()) {
    trace_prune(limits, kModelLin, kPruneThinAir);
    trace_verdict(limits, kModelLin, Verdict::kNo, 0);
    return {};
  }
  // LIN needs no constraint-graph stage: the effective-time order is
  // already a near-total precedence order, so the plain search runs in
  // essentially linear time; the seed-order pass just short-circuits the
  // accepting case. (The forced-order graph pays off for SC/CC, whose
  // base constraints are far weaker.)
  Searcher searcher(h, all_ops(h), limits);
  searcher.must_respect_effective_time();
  const CheckResult r = searcher.run(/*try_seed=*/limits.fast_paths);
  if (r.fast_path) trace_fastpath(limits, kModelLin, kFastSeedOrder);
  trace_verdict(limits, kModelLin, r.verdict, r.nodes);
  return r;
}

CheckResult check_sc(const History& h, const SearchLimits& limits) {
  trace_enter(limits, kModelSc, h.operations().size());
  if (h.has_thin_air_read()) {
    trace_prune(limits, kModelSc, kPruneThinAir);
    trace_verdict(limits, kModelSc, Verdict::kNo, 0);
    return {};
  }
  if (!limits.fast_paths) {
    const CheckResult r = find_serialization(h, all_ops(h), nullptr,
                                             /*program_order=*/true,
                                             /*effective_time=*/false, limits);
    trace_verdict(limits, kModelSc, r.verdict, r.nodes);
    return r;
  }
  const std::vector<OpIndex> subset = all_ops(h);
  // Stage 1: the O(n log n) seed-order pass with only program order — no
  // causal-order build, which costs more than the whole answer on the
  // consistent histories that dominate realistic workloads.
  {
    Searcher seeder(h, subset, limits);
    add_program_order(h, seeder);
    if (auto seeded = seeder.try_seed_order()) {
      trace_fastpath(limits, kModelSc, kFastSeedOrder);
      trace_verdict(limits, kModelSc, seeded->verdict, seeded->nodes);
      return *seeded;
    }
  }
  // Stage 2: polynomial bad-pattern prefilters (SC ⊂ CC, so the CC
  // necessary conditions apply), then the pruned search under the
  // forced-order constraint graph.
  const CausalOrder co = CausalOrder::build(h);
  if (!passes_cc_fast_checks(h, co)) {
    trace_fastpath(limits, kModelSc, kFastPrefilter);
    trace_prune(limits, kModelSc, kPruneBadPattern);
    trace_verdict(limits, kModelSc, Verdict::kNo, 0);
    CheckResult r;
    r.fast_path = true;
    return r;
  }
  Searcher searcher(h, subset, limits);
  add_program_order(h, searcher);
  add_forced_order_edges(h, subset, co, searcher);
  // The seed order already failed above; extra edges cannot make it legal.
  const CheckResult r = searcher.run(/*try_seed=*/false);
  trace_verdict(limits, kModelSc, r.verdict, r.nodes);
  return r;
}

CcCheckResult check_cc(const History& h, const SearchLimits& limits) {
  trace_enter(limits, kModelCc, h.operations().size());
  CcCheckResult result;
  if (h.has_thin_air_read()) {
    trace_prune(limits, kModelCc, kPruneThinAir);
    trace_verdict(limits, kModelCc, Verdict::kNo, 0);
    return result;
  }
  const CausalOrder co = CausalOrder::build(h);
  if (co.cyclic()) {
    trace_prune(limits, kModelCc, kPruneCyclicCausal);
    trace_verdict(limits, kModelCc, Verdict::kNo, 0);
    return result;
  }
  // Fail fast on the polynomial necessary conditions before searching.
  if (!passes_cc_fast_checks(h, co)) {
    trace_prune(limits, kModelCc, kPruneBadPattern);
    trace_verdict(limits, kModelCc, Verdict::kNo, 0);
    return result;
  }

  result.per_site_witness.resize(h.num_sites());
  for (std::uint32_t s = 0; s < h.num_sites(); ++s) {
    // H_{i+w}: site s's operations plus every write in H.
    std::vector<OpIndex> subset = h.all_writes();
    for (OpIndex i : h.site_ops(SiteId{s})) {
      if (h.op(i).is_read()) subset.push_back(i);
    }
    std::sort(subset.begin(), subset.end());
    Searcher searcher(h, subset, limits);
    for (OpIndex a : subset) {
      for (OpIndex b : subset) {
        if (a != b && co.precedes(a, b)) searcher.must_precede(a, b);
      }
    }
    if (limits.fast_paths) add_forced_order_edges(h, subset, co, searcher);
    const CheckResult site = searcher.run(limits.fast_paths);
    result.nodes += site.nodes;
    if (!site.ok()) {
      result.verdict = site.verdict;
      result.failing_site = s;
      result.per_site_witness.clear();
      trace_verdict(limits, kModelCc, result.verdict, result.nodes);
      return result;
    }
    result.per_site_witness[s] = site.witness;
  }
  result.verdict = Verdict::kYes;
  trace_verdict(limits, kModelCc, result.verdict, result.nodes);
  return result;
}

TscResult check_tsc(const History& h, const TimedSpecEpsilon& spec,
                    const SearchLimits& limits) {
  TscResult r;
  r.timing = reads_on_time(h, spec);
  r.sc = check_sc(h, limits);
  return r;
}

TscResult check_tsc(const History& h, const TimedSpecXi& spec,
                    const SearchLimits& limits) {
  TscResult r;
  r.timing = reads_on_time(h, spec);
  r.sc = check_sc(h, limits);
  return r;
}

TccResult check_tcc(const History& h, const TimedSpecEpsilon& spec,
                    const SearchLimits& limits) {
  TccResult r;
  r.timing = reads_on_time(h, spec);
  r.cc = check_cc(h, limits);
  return r;
}

TccResult check_tcc(const History& h, const TimedSpecXi& spec,
                    const SearchLimits& limits) {
  TccResult r;
  r.timing = reads_on_time(h, spec);
  r.cc = check_cc(h, limits);
  return r;
}

}  // namespace timedc
