#include "core/checkers.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/assert.hpp"

namespace timedc {
namespace {

/// Backtracking search for a legal serialization of a subset of operations
/// under a precedence partial order, with memoization of failed states.
class Searcher {
 public:
  Searcher(const History& h, const std::vector<OpIndex>& subset,
           const SearchLimits& limits)
      : h_(h), ops_(subset), limits_(limits) {
    const std::size_t m = ops_.size();
    preds_.assign(m, {});
    local_of_.clear();
    for (std::size_t j = 0; j < m; ++j) local_of_[ops_[j].value] = j;
  }

  /// Declare that history op `a` must precede history op `b` (both must be
  /// in the subset; silently ignored otherwise).
  void must_precede(OpIndex a, OpIndex b) {
    const auto ia = local_of_.find(a.value);
    const auto ib = local_of_.find(b.value);
    if (ia == local_of_.end() || ib == local_of_.end()) return;
    preds_[ib->second].push_back(ia->second);
  }

  CheckResult run() {
    const std::size_t m = ops_.size();
    placed_.assign(m, false);
    num_placed_ = 0;
    order_.clear();
    order_.reserve(m);
    current_.clear();
    nodes_ = 0;
    limit_hit_ = false;
    failed_states_.clear();

    // Deterministic candidate heuristic: try operations in effective-time
    // order first; realistic histories almost always admit a witness close
    // to the real-time order, which keeps the search shallow.
    try_order_.resize(m);
    for (std::size_t j = 0; j < m; ++j) try_order_[j] = j;
    std::sort(try_order_.begin(), try_order_.end(), [&](std::size_t a, std::size_t b) {
      return h_.op(ops_[a]).time < h_.op(ops_[b]).time;
    });

    CheckResult result;
    if (dfs()) {
      result.verdict = Verdict::kYes;
      result.witness.reserve(m);
      for (std::size_t j : order_) result.witness.push_back(ops_[j]);
    } else {
      result.verdict = limit_hit_ ? Verdict::kLimit : Verdict::kNo;
    }
    return result;
  }

 private:
  bool dfs() {
    if (num_placed_ == ops_.size()) return true;
    if (++nodes_ > limits_.max_nodes) {
      limit_hit_ = true;
      return false;
    }
    const std::uint64_t key = state_key();
    if (failed_states_.contains(key)) return false;

    for (std::size_t j : try_order_) {
      if (placed_[j]) continue;
      if (!preds_ready(j)) continue;
      const Operation& op = h_.op(ops_[j]);
      if (op.is_read()) {
        const auto it = current_.find(op.object);
        const Value v = it == current_.end() ? kInitialValue : it->second;
        if (v != op.value) continue;
        place(j);
        if (dfs()) return true;
        unplace_read(j);
      } else {
        const auto it = current_.find(op.object);
        const bool had = it != current_.end();
        const Value prev = had ? it->second : kInitialValue;
        place(j);
        current_[op.object] = op.value;
        if (dfs()) return true;
        if (had)
          current_[op.object] = prev;
        else
          current_.erase(op.object);
        unplace_read(j);
      }
      if (limit_hit_) return false;
    }
    failed_states_.insert(key);
    return false;
  }

  bool preds_ready(std::size_t j) const {
    for (std::size_t p : preds_[j]) {
      if (!placed_[p]) return false;
    }
    return true;
  }

  void place(std::size_t j) {
    placed_[j] = true;
    ++num_placed_;
    order_.push_back(j);
  }

  void unplace_read(std::size_t j) {
    placed_[j] = false;
    --num_placed_;
    order_.pop_back();
  }

  /// Hash of (placed set, per-object current value). Failure from a state is
  /// a function of exactly these two, so memoizing on them is sound.
  std::uint64_t state_key() const {
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    auto mix = [&hash](std::uint64_t v) {
      hash ^= v + 0x9e3779b97f4a7c15ULL + (hash << 6) + (hash >> 2);
    };
    std::uint64_t word = 0;
    for (std::size_t j = 0; j < placed_.size(); ++j) {
      if (placed_[j]) word |= 1ULL << (j & 63);
      if ((j & 63) == 63) {
        mix(word);
        word = 0;
      }
    }
    mix(word);
    // Order-independent accumulation over the current-value map.
    std::uint64_t acc = 0;
    for (const auto& [obj, val] : current_) {
      std::uint64_t e = (static_cast<std::uint64_t>(obj.value) << 32) ^
                        static_cast<std::uint64_t>(val.value);
      e *= 0xbf58476d1ce4e5b9ULL;
      e ^= e >> 29;
      acc += e;
    }
    mix(acc);
    return hash;
  }

  const History& h_;
  std::vector<OpIndex> ops_;
  SearchLimits limits_;
  std::unordered_map<std::uint32_t, std::size_t> local_of_;
  std::vector<std::vector<std::size_t>> preds_;
  std::vector<std::size_t> try_order_;

  std::vector<bool> placed_;
  std::size_t num_placed_ = 0;
  std::vector<std::size_t> order_;
  std::unordered_map<ObjectId, Value> current_;
  std::uint64_t nodes_ = 0;
  bool limit_hit_ = false;
  std::unordered_set<std::uint64_t> failed_states_;
};

std::vector<OpIndex> all_ops(const History& h) {
  std::vector<OpIndex> ops;
  ops.reserve(h.size());
  for (std::uint32_t i = 0; i < h.size(); ++i) ops.push_back(OpIndex{i});
  return ops;
}

}  // namespace

CheckResult find_serialization(const History& h,
                               const std::vector<OpIndex>& subset,
                               const CausalOrder* causal_constraint,
                               bool program_order_constraint,
                               bool effective_time_constraint,
                               const SearchLimits& limits) {
  Searcher searcher(h, subset, limits);
  if (program_order_constraint) {
    for (std::size_t s = 0; s < h.num_sites(); ++s) {
      const auto& ops = h.site_ops(SiteId{static_cast<std::uint32_t>(s)});
      for (std::size_t k = 1; k < ops.size(); ++k)
        searcher.must_precede(ops[k - 1], ops[k]);
    }
  }
  if (effective_time_constraint) {
    for (OpIndex a : subset) {
      for (OpIndex b : subset) {
        if (h.op(a).time < h.op(b).time) searcher.must_precede(a, b);
      }
    }
  }
  if (causal_constraint != nullptr) {
    for (OpIndex a : subset) {
      for (OpIndex b : subset) {
        if (a != b && causal_constraint->precedes(a, b)) searcher.must_precede(a, b);
      }
    }
  }
  return searcher.run();
}

CheckResult check_lin(const History& h, const SearchLimits& limits) {
  if (h.has_thin_air_read()) return {Verdict::kNo, {}};
  return find_serialization(h, all_ops(h), nullptr,
                            /*program_order=*/false,
                            /*effective_time=*/true, limits);
}

CheckResult check_sc(const History& h, const SearchLimits& limits) {
  if (h.has_thin_air_read()) return {Verdict::kNo, {}};
  return find_serialization(h, all_ops(h), nullptr,
                            /*program_order=*/true,
                            /*effective_time=*/false, limits);
}

CcCheckResult check_cc(const History& h, const SearchLimits& limits) {
  CcCheckResult result;
  if (h.has_thin_air_read()) return result;
  const CausalOrder co = CausalOrder::build(h);
  if (co.cyclic()) return result;
  // Fail fast on the polynomial necessary conditions before searching.
  if (!passes_cc_fast_checks(h, co)) return result;

  result.per_site_witness.resize(h.num_sites());
  for (std::uint32_t s = 0; s < h.num_sites(); ++s) {
    // H_{i+w}: site s's operations plus every write in H.
    std::vector<OpIndex> subset = h.all_writes();
    for (OpIndex i : h.site_ops(SiteId{s})) {
      if (h.op(i).is_read()) subset.push_back(i);
    }
    std::sort(subset.begin(), subset.end());
    const CheckResult site = find_serialization(h, subset, &co,
                                                /*program_order=*/false,
                                                /*effective_time=*/false, limits);
    if (!site.ok()) {
      result.verdict = site.verdict;
      result.failing_site = s;
      result.per_site_witness.clear();
      return result;
    }
    result.per_site_witness[s] = site.witness;
  }
  result.verdict = Verdict::kYes;
  return result;
}

TscResult check_tsc(const History& h, const TimedSpecEpsilon& spec,
                    const SearchLimits& limits) {
  TscResult r;
  r.timing = reads_on_time(h, spec);
  r.sc = check_sc(h, limits);
  return r;
}

TscResult check_tsc(const History& h, const TimedSpecXi& spec,
                    const SearchLimits& limits) {
  TscResult r;
  r.timing = reads_on_time(h, spec);
  r.sc = check_sc(h, limits);
  return r;
}

TccResult check_tcc(const History& h, const TimedSpecEpsilon& spec,
                    const SearchLimits& limits) {
  TccResult r;
  r.timing = reads_on_time(h, spec);
  r.cc = check_cc(h, limits);
  return r;
}

TccResult check_tcc(const History& h, const TimedSpecXi& spec,
                    const SearchLimits& limits) {
  TccResult r;
  r.timing = reads_on_time(h, spec);
  r.cc = check_cc(h, limits);
  return r;
}

}  // namespace timedc
