// ASCII rendering of executions, in the style of the paper's figures:
// one row per site, operations placed proportionally to their effective
// times. Used by the figure benches and the examples.
#pragma once

#include <string>

#include "core/history.hpp"
#include "core/timed.hpp"

namespace timedc {

struct RenderOptions {
  std::size_t width = 100;  // columns for the time axis
  bool show_axis = true;
};

std::string render_timeline(const History& h, const RenderOptions& options = {});

/// Render the outcome of a timed check: one line per late read with its W_r.
std::string render_timed_result(const History& h, const TimedCheckResult& result);

}  // namespace timedc
