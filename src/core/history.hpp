// Global histories H and per-site histories H_i (Section 2).
//
// A History is an immutable, validated set of operations with:
//   * program order: the order operations were appended per site,
//   * forced reads-from: the paper assumes each written value is unique, so
//     a read of value v on object X can only have been served by the single
//     write of v to X (or by the initial value 0 if v == 0 and nothing wrote
//     it). This is what makes the timed predicate of Definitions 1/2/6
//     checkable independently of the serialization being searched.
// Optionally a history carries logical timestamps L(a) per operation for the
// logical-clock variant of timed consistency (Definition 6).
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "clocks/vector_clock.hpp"
#include "common/sim_time.hpp"
#include "common/types.hpp"
#include "core/operation.hpp"

namespace timedc {

/// The paper's convention: every object starts with value 0.
inline constexpr Value kInitialValue{0};

class History {
 public:
  std::size_t size() const { return ops_.size(); }
  std::size_t num_sites() const { return per_site_.size(); }
  bool empty() const { return ops_.empty(); }

  const Operation& op(OpIndex i) const { return ops_[i.value]; }
  const std::vector<Operation>& operations() const { return ops_; }

  /// Program order: indices of site i's operations, in execution order.
  const std::vector<OpIndex>& site_ops(SiteId i) const {
    return per_site_[i.value];
  }

  /// The write that read `r` must read from (unique-values assumption), or
  /// nullopt when the read returns the initial value. Invalid on writes.
  std::optional<OpIndex> forced_source(OpIndex r) const;

  /// True iff some read returns a non-initial value no write produced
  /// ("thin-air read"): such a history satisfies no consistency model here.
  bool has_thin_air_read() const { return thin_air_; }

  /// The write of `value` to `object`, if any.
  std::optional<OpIndex> writer_of(ObjectId object, Value value) const;

  /// All writes to `object`, in history (append) order.
  const std::vector<OpIndex>& writes_to(ObjectId object) const;

  /// All writes to `object`, sorted by (effective time, index). Precomputed
  /// at build() for the timed checkers' binary-search fast path.
  const std::vector<OpIndex>& writes_to_by_time(ObjectId object) const;

  /// All write operations in H, in history order (the "+w" of H_{i+w}).
  const std::vector<OpIndex>& all_writes() const { return writes_; }

  /// Optional logical timestamps for Definition 6. Empty if unset.
  const std::vector<VectorTimestamp>& logical_times() const { return logical_; }
  bool has_logical_times() const { return !logical_.empty(); }

  std::string to_string() const;

 private:
  friend class HistoryBuilder;

  std::vector<Operation> ops_;
  std::vector<std::vector<OpIndex>> per_site_;
  std::vector<OpIndex> writes_;
  std::unordered_map<ObjectId, std::vector<OpIndex>> writes_by_object_;
  std::unordered_map<ObjectId, std::vector<OpIndex>> writes_by_object_time_;
  // (object, value) -> writer op. Keyed by object then value.
  std::unordered_map<ObjectId, std::unordered_map<Value, OpIndex>> writer_;
  std::vector<VectorTimestamp> logical_;
  bool thin_air_ = false;
};

/// Builds a history incrementally; enforces the paper's assumptions:
/// unique written values per object, and strictly increasing effective
/// times along each site's program order.
class HistoryBuilder {
 public:
  explicit HistoryBuilder(std::size_t num_sites);

  /// Append a write w_site(object)value at effective time t.
  HistoryBuilder& write(SiteId site, ObjectId object, Value value, SimTime t);

  /// Append a read r_site(object)value at effective time t.
  HistoryBuilder& read(SiteId site, ObjectId object, Value value, SimTime t);

  /// Attach logical timestamps: must be called after all operations are
  /// appended, one timestamp per operation in append order.
  HistoryBuilder& logical_times(std::vector<VectorTimestamp> times);

  History build();

 private:
  HistoryBuilder& append(SiteId site, OpType type, ObjectId object, Value value,
                         SimTime t);

  History h_;
  std::vector<SimTime> last_time_per_site_;
  bool built_ = false;
};

}  // namespace timedc
