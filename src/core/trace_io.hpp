// Plain-text trace format for histories, so executions can be stored,
// diffed, and checked from the command line (tools/timedc-check).
//
// Format (one operation per line, '#' comments, blank lines ignored):
//
//   sites <N>
//   eps <us>                 (optional: measured pairwise clock-skew bound)
//   w <site> <object> <value> <time_us>
//   r <site> <object> <value> <time_us>
//
// <object> is either a single letter (A..Z, the paper's notation) or
// "obj<N>". Lines may appear in any order; operations are appended per site
// in increasing time order, so per-site times must be strictly increasing
// (the History invariant).
//
// The `eps` directive records the *measured* epsilon of the run that
// produced the trace (Definition 2's skew bound): the largest pairwise
// clock-error bound any two sites exhibited while the history was captured.
// timedc-check auto-ingests it so checked staleness matches what the
// approximately-synchronized sites could actually observe.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "core/history.hpp"

namespace timedc {

/// Serialize a history to the trace format (stable, round-trippable).
std::string write_trace(const History& h);

/// As above, additionally recording the run's measured pairwise skew bound
/// as an `eps` directive (negative values are not written).
std::string write_trace(const History& h, SimTime measured_eps);

struct TraceParseResult {
  std::optional<History> history;
  std::string error;  // empty on success; contains line number otherwise
  /// The trace's recorded `eps` directive, when present.
  std::optional<SimTime> measured_eps;
  bool ok() const { return history.has_value(); }
};

/// Parse a trace; never throws — malformed input yields an error message.
TraceParseResult parse_trace(std::string_view text);

}  // namespace timedc
