#include "core/timed.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "clocks/physical_clock.hpp"
#include "common/assert.hpp"

namespace timedc {
namespace {

/// Shared scan: for each read, collect W_r via a predicate deciding whether
/// a candidate write w' interferes given the source write (or none).
template <typename Interferes>
TimedCheckResult scan(const History& h, Interferes&& interferes) {
  TimedCheckResult result;
  for (const Operation& r : h.operations()) {
    if (!r.is_read()) continue;
    const std::optional<OpIndex> src = h.forced_source(r.index);
    std::vector<OpIndex> w_r;
    for (OpIndex w2 : h.writes_to(r.object)) {
      if (src && w2 == *src) continue;
      if (interferes(src, w2, r.index)) w_r.push_back(w2);
    }
    if (!w_r.empty()) {
      result.all_on_time = false;
      result.late_reads.push_back(LateRead{r.index, src, std::move(w_r)});
    }
  }
  return result;
}

}  // namespace

TimedCheckResult reads_on_time(const History& h, const TimedSpecPerfect& spec) {
  return reads_on_time(h, TimedSpecEpsilon{spec.delta, SimTime::zero()});
}

TimedCheckResult reads_on_time(const History& h, const TimedSpecEpsilon& spec) {
  // Both Def 1/2 predicates are monotone in T(w'): "definitely newer than
  // the source" admits a suffix of the time-sorted writes, "definitely more
  // than delta old" a prefix. So W_r is a contiguous run of
  // writes_to_by_time(X) found by two binary searches — O(R log W) overall
  // instead of the naive O(R x W) product (property-tested equivalent).
  TimedCheckResult result;
  for (const Operation& r : h.operations()) {
    if (!r.is_read()) continue;
    const std::optional<OpIndex> src = h.forced_source(r.index);
    const auto& ws = h.writes_to_by_time(r.object);
    // First write definitely newer than the source. A read of the initial
    // value has a virtual source at -infinity: every write qualifies.
    auto first_newer = ws.begin();
    if (src) {
      const SimTime t_src = h.op(*src).time;
      first_newer = std::partition_point(ws.begin(), ws.end(), [&](OpIndex w) {
        return !definitely_before(t_src, h.op(w).time, spec.eps);
      });
    }
    // Within the newer suffix, "definitely older than T(r) - delta" holds on
    // a prefix. (The source itself can never land in the run: it is not
    // definitely newer than itself.)
    const SimTime bound = r.time - spec.delta;
    const auto end_stale = std::partition_point(first_newer, ws.end(), [&](OpIndex w) {
      return definitely_before(h.op(w).time, bound, spec.eps);
    });
    if (first_newer != end_stale) {
      std::vector<OpIndex> w_r(first_newer, end_stale);
      std::sort(w_r.begin(), w_r.end());  // report in history (append) order
      result.all_on_time = false;
      result.late_reads.push_back(LateRead{r.index, src, std::move(w_r)});
    }
  }
  return result;
}

TimedCheckResult reads_on_time(const History& h, const TimedSpecXi& spec) {
  TIMEDC_ASSERT(spec.xi != nullptr);
  TIMEDC_ASSERT(h.has_logical_times());
  const auto& lt = h.logical_times();
  const XiMap& xi = *spec.xi;
  return scan(h, [&](std::optional<OpIndex> src, OpIndex w2, OpIndex r) {
    const double x_w2 = xi(lt[w2.value]);
    const double x_r = xi(lt[r.value]);
    const bool newer = !src || xi(lt[src->value]) < x_w2;
    const bool stale = x_w2 < x_r - spec.delta;
    return newer && stale;
  });
}

bool is_timed_serialization(const History& h, std::span<const OpIndex> order,
                            const TimedSpecEpsilon& spec) {
  // Last write per object seen so far in S.
  std::unordered_map<ObjectId, OpIndex> last_write;
  for (OpIndex i : order) {
    const Operation& op = h.op(i);
    if (op.is_write()) {
      last_write[op.object] = i;
      continue;
    }
    const auto src = last_write.find(op.object);
    const SimTime t_r = op.time;
    for (OpIndex w2 : h.writes_to(op.object)) {
      if (src != last_write.end() && w2 == src->second) continue;
      const SimTime t_w2 = h.op(w2).time;
      const bool newer =
          src == last_write.end() ||
          definitely_before(h.op(src->second).time, t_w2, spec.eps);
      if (newer && definitely_before(t_w2, t_r - spec.delta, spec.eps)) {
        return false;
      }
    }
  }
  return true;
}

std::vector<OpIndex> interference_set(const History& h, OpIndex read,
                                      SimTime delta, SimTime eps) {
  TIMEDC_ASSERT(h.op(read).is_read());
  const auto result = reads_on_time(h, TimedSpecEpsilon{delta, eps});
  for (const LateRead& lr : result.late_reads) {
    if (lr.read == read) return lr.w_r;
  }
  return {};
}

SimTime min_timed_delta(const History& h) {
  return min_timed_delta(h, SimTime::zero());
}

SimTime min_timed_delta(const History& h, SimTime eps) {
  SimTime worst = SimTime::zero();
  for (const Operation& r : h.operations()) {
    if (!r.is_read()) continue;
    const std::optional<OpIndex> src = h.forced_source(r.index);
    for (OpIndex w2 : h.writes_to(r.object)) {
      if (src && w2 == *src) continue;
      const SimTime t_w2 = h.op(w2).time;
      if (src && !definitely_before(h.op(*src).time, t_w2, eps)) continue;
      // W_r empty at delta iff NOT (t_w2 + eps < t_r - delta), i.e.
      // delta >= t_r - t_w2 - eps.
      const SimTime gap = r.time - t_w2 - eps;
      worst = max(worst, gap);
    }
  }
  return worst;
}

std::vector<SimTime> staleness_gaps(const History& h) {
  std::vector<SimTime> gaps;
  for (const Operation& r : h.operations()) {
    if (!r.is_read()) continue;
    const std::optional<OpIndex> src = h.forced_source(r.index);
    for (OpIndex w2 : h.writes_to(r.object)) {
      if (src && w2 == *src) continue;
      const SimTime t_w2 = h.op(w2).time;
      if (src && t_w2 <= h.op(*src).time) continue;
      const SimTime gap = r.time - t_w2;
      if (gap > SimTime::zero()) gaps.push_back(gap);
    }
  }
  std::sort(gaps.begin(), gaps.end(), std::greater<>());
  return gaps;
}

std::vector<ReadStaleness> per_read_staleness(const History& h) {
  std::vector<ReadStaleness> out;
  for (const Operation& r : h.operations()) {
    if (!r.is_read()) continue;
    ReadStaleness rs{r.index, SimTime::zero()};
    const std::optional<OpIndex> src = h.forced_source(r.index);
    for (OpIndex w2 : h.writes_to(r.object)) {
      if (src && w2 == *src) continue;
      const SimTime t_w2 = h.op(w2).time;
      if (src && t_w2 <= h.op(*src).time) continue;
      const SimTime gap = r.time - t_w2;
      if (gap > rs.staleness) rs.staleness = gap;
    }
    out.push_back(rs);
  }
  return out;
}

}  // namespace timedc
