// History generators for property tests and experiments.
//
// Two families:
//   * random_history: unconstrained reads (values drawn from what has been
//     written so far, or the initial value) — produces a mix of consistent
//     and inconsistent histories, exercising both verdicts of the checkers.
//   * replica_history: reads are served by a simulated per-site replica that
//     applies each write after a random propagation delay — produces the
//     kind of history a real replicated store generates, whose staleness is
//     controlled by the delay bound (the knob timed consistency is about).
// Plus annotate_logical_times, which reconstructs plausible vector-clock
// timestamps for an existing history (Definition 6 inputs).
#pragma once

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "core/history.hpp"

namespace timedc {

struct RandomHistoryParams {
  std::size_t num_sites = 3;
  std::size_t num_objects = 2;
  std::size_t num_ops = 12;
  double write_ratio = 0.5;
  /// Max gap between consecutive effective times on one site.
  std::int64_t max_step_micros = 30;
};

History random_history(const RandomHistoryParams& params, Rng& rng);

struct ReplicaHistoryParams {
  std::size_t num_sites = 4;
  std::size_t num_objects = 3;
  std::size_t num_ops = 24;
  double write_ratio = 0.3;
  std::int64_t max_step_micros = 30;
  /// Write propagation delay to each remote replica: uniform in
  /// [min_delay, max_delay]. Small delays yield nearly-linearizable
  /// histories; large delays yield very stale (but still per-site-coherent)
  /// ones.
  std::int64_t min_delay_micros = 5;
  std::int64_t max_delay_micros = 100;
};

History replica_history(const ReplicaHistoryParams& params, Rng& rng);

/// Rebuild `h` with vector-clock logical times attached: operations are
/// replayed in effective-time order; each write ticks its site's clock and
/// each read merges the source write's timestamp (as if the value arrived in
/// a message), matching how the lifetime protocol of Section 5.3 stamps
/// operations.
History annotate_logical_times(const History& h);

}  // namespace timedc
