// Executable consistency checkers for the models of the paper:
// LIN, SC, CC (Section 2) and their timed versions TSC, TCC (Section 3).
//
// Verifying SC is NP-complete (the paper's footnote 2, [18,36]); the
// checkers use exhaustive backtracking over serializations with memoization
// on (placed-operations, per-object current value) states and a node budget,
// so a verdict is kYes (witness found), kNo (search space exhausted) or
// kLimit (budget hit — only reachable on adversarial inputs far larger than
// the paper's figures and the property-test sizes).
//
// Because written values are unique, the reads-from relation is forced, so
//   TSC  =  every read on time (Defs 1/2)  AND  SC,
//   TCC  =  every read on time             AND  CC,
// exactly the paper's TSC = T ∩ SC and TCC = T ∩ CC.
//
// Most histories never reach the backtracking engine. With fast paths on
// (the default; SearchLimits::fast_paths):
//   * necessary-condition prefilters — the polynomial bad-pattern checks of
//     causal.hpp apply to SC and LIN too (LIN ⊂ SC ⊂ CC), rejecting most
//     inconsistent histories without any search;
//   * a forced-order constraint graph — program order ∪ reads-from, closed
//     transitively (CausalOrder), plus the write-ordering edges it forces
//     (a write known to precede a read cannot land between the read's
//     source and the read) — is precomputed once per history and handed to
//     the search as bitset predecessor rows, pruning the candidate set at
//     every node;
//   * a seed-order pass tries the effective-time order outright, accepting
//     realistic histories in O(n log n) with zero backtracking nodes.
// Verdicts are unchanged (equivalence is property-tested against the
// pruned-free engine); only witnesses may differ.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/causal.hpp"
#include "core/history.hpp"
#include "core/timed.hpp"

namespace timedc {

class Tracer;

enum class Verdict { kYes, kNo, kLimit };

inline const char* to_cstring(Verdict v) {
  switch (v) {
    case Verdict::kYes: return "yes";
    case Verdict::kNo: return "no";
    case Verdict::kLimit: return "limit";
  }
  return "?";
}

struct SearchLimits {
  std::uint64_t max_nodes = 4'000'000;
  /// Prefilters + forced-order pruning + seed-order pass (see file header).
  /// Off = the plain exhaustive engine; same verdicts (property-tested),
  /// kept reachable for the equivalence tests and perf baselines.
  bool fast_paths = true;
  /// Search telemetry sink (check.enter/fastpath/prune/verdict events;
  /// a = model 0/1/2 = LIN/SC/CC). nullptr = off — one branch per event.
  Tracer* tracer = nullptr;
};

struct CheckResult {
  Verdict verdict = Verdict::kNo;
  std::vector<OpIndex> witness;  // a satisfying serialization, when kYes
  std::uint64_t nodes = 0;       // backtracking nodes expanded
  bool fast_path = false;        // verdict reached without backtracking
  bool ok() const { return verdict == Verdict::kYes; }
};

struct CcCheckResult {
  Verdict verdict = Verdict::kNo;
  // One serialization of H_{i+w} per site, when kYes.
  std::vector<std::vector<OpIndex>> per_site_witness;
  // Site whose serialization search failed, when kNo.
  std::uint32_t failing_site = 0;
  std::uint64_t nodes = 0;  // backtracking nodes, summed over sites
  bool ok() const { return verdict == Verdict::kYes; }
};

/// Linearizability: a legal serialization of H respecting effective-time
/// order (operations with equal effective times may appear in either order).
CheckResult check_lin(const History& h, const SearchLimits& limits = {});

/// Sequential consistency: a legal serialization respecting program order.
CheckResult check_sc(const History& h, const SearchLimits& limits = {});

/// Causal consistency (causal memory, Ahamad et al. [2]): per site i, a
/// legal serialization of H_{i+w} respecting the causal order.
CcCheckResult check_cc(const History& h, const SearchLimits& limits = {});

/// TSC / TCC verdicts decompose into the ordering part and the timing part.
struct TscResult {
  TimedCheckResult timing;
  CheckResult sc;
  bool ok() const { return timing.all_on_time && sc.ok(); }
  Verdict verdict() const {
    if (!timing.all_on_time) return Verdict::kNo;
    return sc.verdict;
  }
};

struct TccResult {
  TimedCheckResult timing;
  CcCheckResult cc;
  bool ok() const { return timing.all_on_time && cc.ok(); }
  Verdict verdict() const {
    if (!timing.all_on_time) return Verdict::kNo;
    return cc.verdict;
  }
};

TscResult check_tsc(const History& h, const TimedSpecEpsilon& spec,
                    const SearchLimits& limits = {});
TscResult check_tsc(const History& h, const TimedSpecXi& spec,
                    const SearchLimits& limits = {});
TccResult check_tcc(const History& h, const TimedSpecEpsilon& spec,
                    const SearchLimits& limits = {});
TccResult check_tcc(const History& h, const TimedSpecXi& spec,
                    const SearchLimits& limits = {});

/// The generic engine: search for a legal serialization of the operations
/// in `subset` (indices into h) that respects `must_precede`, given as a
/// strict partial order predicate over history op indices. Exposed for
/// tests and for callers wanting custom orders.
CheckResult find_serialization(const History& h,
                               const std::vector<OpIndex>& subset,
                               const CausalOrder* causal_constraint,
                               bool program_order_constraint,
                               bool effective_time_constraint,
                               const SearchLimits& limits);

}  // namespace timedc
