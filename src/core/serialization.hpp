// Serializations of operation sets (Section 2).
//
// A serialization S of a set D of operations is a linear order on exactly
// the operations of D in which every read returns the value of the most
// recent preceding write to the same object (or the initial value 0 when no
// write precedes it). These helpers validate candidate serializations and
// the partial orders they must respect.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/history.hpp"

namespace timedc {

/// True iff `order` (op indices into `h`) is a *legal* serialization of the
/// set it contains: every read returns the latest preceding write's value.
bool is_legal_serialization(const History& h, std::span<const OpIndex> order);

/// True iff the operations of every site appear in `order` in their program
/// order. Operations of sites not present in `order` are ignored.
bool respects_program_order(const History& h, std::span<const OpIndex> order);

/// True iff operations appear in nondecreasing effective-time order — the
/// "order induced by the effective times" required by linearizability.
bool respects_effective_time(const History& h, std::span<const OpIndex> order);

/// True iff `order` is a permutation of exactly the ops {0..h.size()-1}.
bool is_permutation_of_history(const History& h, std::span<const OpIndex> order);

std::string serialization_to_string(const History& h,
                                    std::span<const OpIndex> order);

}  // namespace timedc
