#include "core/hierarchy_audit.hpp"

#include <optional>

#include "common/parallel.hpp"
#include "core/history_gen.hpp"
#include "core/timed.hpp"
#include "obs/trace.hpp"

namespace timedc {
namespace {

struct RoundResult {
  bool lin = false, sc = false, cc = false, timed = false;
  bool tsc = false, tcc = false;
  bool limit = false;
  int violations = 0;
  std::vector<bool> on_time_at;  // per sweep point
  std::uint64_t nodes = 0;
  std::uint64_t fast_paths = 0;
  std::vector<TraceEvent> events;  // this round's checker telemetry
};

History generate_round(std::uint64_t seed, int round) {
  Rng rng = Rng::stream(seed, static_cast<std::uint64_t>(round));
  if (round % 2 == 0) {
    RandomHistoryParams p;
    p.num_ops = 12;
    p.num_sites = 3;
    p.num_objects = 2;
    return random_history(p, rng);
  }
  ReplicaHistoryParams p;
  p.num_ops = 16;
  p.num_sites = 3;
  p.num_objects = 2;
  p.max_delay_micros = 120;
  return replica_history(p, rng);
}

RoundResult run_round(const HierarchyAuditConfig& config, int round) {
  const History h = generate_round(config.seed, round);
  const TimedSpecEpsilon main_spec{config.delta, SimTime::zero()};

  RoundResult r;
  // Rounds run in parallel, so each traces into its own Tracer; the caller
  // adopts the flushed traces in round order (deterministic at any thread
  // count).
  std::optional<Tracer> local;
  SearchLimits limits = config.limits;
  if (config.tracer != nullptr) {
    local.emplace(config.tracer->config());
    limits.tracer = &*local;
  }
  const CheckResult lin = check_lin(h, limits);
  const CheckResult sc = check_sc(h, limits);
  const CcCheckResult cc = check_cc(h, limits);
  const TscResult tsc = check_tsc(h, main_spec, limits);
  const TccResult tcc = check_tcc(h, main_spec, limits);
  r.nodes = lin.nodes + sc.nodes + cc.nodes + tsc.sc.nodes + tcc.cc.nodes;
  r.fast_paths = static_cast<std::uint64_t>(lin.fast_path) + sc.fast_path +
                 tsc.sc.fast_path;
  if (local) r.events = local->flush();
  r.limit = lin.verdict == Verdict::kLimit || sc.verdict == Verdict::kLimit ||
            cc.verdict == Verdict::kLimit;
  r.lin = lin.ok();
  r.sc = sc.ok();
  r.cc = cc.ok();
  r.timed = reads_on_time(h, main_spec).all_on_time;
  r.tsc = tsc.ok();
  r.tcc = tcc.ok();

  // The paper's set identities. A kLimit round is "don't know" — excluded
  // here and tallied by the caller instead of miscounted as a violation.
  if (!r.limit) {
    if (r.lin && !r.sc) ++r.violations;          // LIN ⊆ SC
    if (r.sc && !r.cc) ++r.violations;           // SC ⊆ CC
    if (r.tsc != (r.timed && r.sc)) ++r.violations;  // TSC = T ∩ SC
    if (r.tcc != (r.timed && r.cc)) ++r.violations;  // TCC = T ∩ CC
    if ((r.tcc && r.sc) != r.tsc) ++r.violations;    // TCC ∩ SC = TSC
    if (r.tsc && !r.tcc) ++r.violations;             // TSC ⊆ TCC
  }

  // Figure 4b sweep: only the (polynomial) timed predicate varies with
  // Delta; the search half is the identity just audited at the main Delta.
  r.on_time_at.reserve(config.sweep_micros.size());
  for (std::int64_t d : config.sweep_micros) {
    const TimedSpecEpsilon spec{SimTime::micros(d), SimTime::zero()};
    r.on_time_at.push_back(reads_on_time(h, spec).all_on_time);
  }
  return r;
}

}  // namespace

HierarchyAuditResult run_hierarchy_audit(const HierarchyAuditConfig& config) {
  const std::vector<RoundResult> rounds = parallel_map(
      static_cast<std::size_t>(config.rounds),
      [&config](std::size_t i) { return run_round(config, static_cast<int>(i)); },
      static_cast<std::size_t>(config.num_threads));

  HierarchyAuditResult out;
  out.rounds = config.rounds;
  out.accept_tsc.assign(config.sweep_micros.size(), 0);
  out.accept_tcc.assign(config.sweep_micros.size(), 0);
  for (const RoundResult& r : rounds) {
    out.n_lin += r.lin;
    out.n_sc += r.sc;
    out.n_cc += r.cc;
    out.n_timed += r.timed;
    out.n_tsc += r.tsc;
    out.n_tcc += r.tcc;
    out.violations += r.violations;
    out.limit_rounds += r.limit;
    out.nodes += r.nodes;
    out.fast_paths += r.fast_paths;
    if (config.tracer != nullptr) config.tracer->append_flushed(r.events);
    for (std::size_t k = 0; k < r.on_time_at.size(); ++k) {
      out.accept_tsc[k] += r.on_time_at[k] && r.sc;
      out.accept_tcc[k] += r.on_time_at[k] && r.cc;
    }
    // Delta = infinity: every read is trivially on time, so TSC(inf) = SC
    // and TCC(inf) = CC — Figure 4b's right edge.
    out.tsc_inf += r.sc;
    out.tcc_inf += r.cc;
  }
  return out;
}

}  // namespace timedc
