#include "core/history_gen.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/assert.hpp"

namespace timedc {
namespace {

/// Per-site strictly increasing effective times with random steps.
class TimeLine {
 public:
  TimeLine(std::size_t num_sites, std::int64_t max_step)
      : next_(num_sites, 0), max_step_(max_step) {}

  SimTime advance(SiteId s, Rng& rng) {
    next_[s.value] += rng.uniform_int(1, max_step_);
    return SimTime::micros(next_[s.value]);
  }

 private:
  std::vector<std::int64_t> next_;
  std::int64_t max_step_;
};

}  // namespace

History random_history(const RandomHistoryParams& params, Rng& rng) {
  TIMEDC_ASSERT(params.num_sites > 0 && params.num_objects > 0);
  HistoryBuilder builder(params.num_sites);
  TimeLine timeline(params.num_sites, params.max_step_micros);
  // Values written so far, per object; reads sample from these plus 0.
  std::vector<std::vector<Value>> written(params.num_objects);
  std::int64_t next_value = 1;

  for (std::size_t k = 0; k < params.num_ops; ++k) {
    const SiteId site{static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(params.num_sites) - 1))};
    const ObjectId obj{static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(params.num_objects) - 1))};
    const SimTime t = timeline.advance(site, rng);
    if (rng.bernoulli(params.write_ratio)) {
      const Value v{next_value++};
      written[obj.value].push_back(v);
      builder.write(site, obj, v, t);
    } else {
      const auto& candidates = written[obj.value];
      const std::int64_t pick =
          rng.uniform_int(0, static_cast<std::int64_t>(candidates.size()));
      const Value v = pick == 0 ? kInitialValue
                                : candidates[static_cast<std::size_t>(pick - 1)];
      builder.read(site, obj, v, t);
    }
  }
  return builder.build();
}

History replica_history(const ReplicaHistoryParams& params, Rng& rng) {
  TIMEDC_ASSERT(params.num_sites > 0 && params.num_objects > 0);
  TIMEDC_ASSERT(params.min_delay_micros <= params.max_delay_micros);

  // First pass: choose sites, times and op types; writes get unique values.
  struct PlannedOp {
    SiteId site;
    ObjectId obj;
    bool is_write;
    Value value;  // for writes
    SimTime t;
  };
  TimeLine timeline(params.num_sites, params.max_step_micros);
  std::vector<PlannedOp> plan;
  std::int64_t next_value = 1;
  for (std::size_t k = 0; k < params.num_ops; ++k) {
    PlannedOp op;
    op.site = SiteId{static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(params.num_sites) - 1))};
    op.obj = ObjectId{static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(params.num_objects) - 1))};
    op.is_write = rng.bernoulli(params.write_ratio);
    op.t = timeline.advance(op.site, rng);
    if (op.is_write) op.value = Value{next_value++};
    plan.push_back(op);
  }

  // Second pass: per-replica apply schedule. A write is applied at its own
  // site immediately and at every other site after a random delay; a replica
  // holds the value of the write it applied most recently.
  struct Apply {
    SimTime at;
    SimTime write_time;  // tiebreak: later original write wins on same `at`
    ObjectId obj;
    Value value;
  };
  std::vector<std::vector<Apply>> applies(params.num_sites);
  for (const PlannedOp& op : plan) {
    if (!op.is_write) continue;
    for (std::uint32_t s = 0; s < params.num_sites; ++s) {
      const SimTime delay =
          s == op.site.value
              ? SimTime::zero()
              : SimTime::micros(
                    rng.uniform_int(params.min_delay_micros, params.max_delay_micros));
      applies[s].push_back(Apply{op.t + delay, op.t, op.obj, op.value});
    }
  }
  for (auto& a : applies) {
    std::sort(a.begin(), a.end(), [](const Apply& x, const Apply& y) {
      if (x.at != y.at) return x.at < y.at;
      return x.write_time < y.write_time;
    });
  }

  auto replica_value = [&](SiteId site, ObjectId obj, SimTime t) {
    Value v = kInitialValue;
    for (const Apply& a : applies[site.value]) {
      if (a.at > t) break;
      if (a.obj == obj) v = a.value;
    }
    return v;
  };

  HistoryBuilder builder(params.num_sites);
  for (const PlannedOp& op : plan) {
    if (op.is_write) {
      builder.write(op.site, op.obj, op.value, op.t);
    } else {
      builder.read(op.site, op.obj, replica_value(op.site, op.obj, op.t), op.t);
    }
  }
  return builder.build();
}

History annotate_logical_times(const History& h) {
  // Replay in effective-time order; ties broken by history index.
  std::vector<OpIndex> order;
  order.reserve(h.size());
  for (std::uint32_t i = 0; i < h.size(); ++i) order.push_back(OpIndex{i});
  std::sort(order.begin(), order.end(), [&](OpIndex a, OpIndex b) {
    if (h.op(a).time != h.op(b).time) return h.op(a).time < h.op(b).time;
    return a < b;
  });

  std::vector<VectorClock> clocks;
  clocks.reserve(h.num_sites());
  for (std::uint32_t s = 0; s < h.num_sites(); ++s)
    clocks.emplace_back(h.num_sites(), SiteId{s});

  std::vector<VectorTimestamp> stamps(h.size(), VectorTimestamp(h.num_sites()));
  for (OpIndex i : order) {
    const Operation& op = h.op(i);
    VectorClock& clock = clocks[op.site.value];
    if (op.is_read()) {
      const auto src = h.forced_source(i);
      if (src && h.op(*src).site != op.site) {
        stamps[i.value] = clock.receive(stamps[src->value]);
        continue;
      }
    }
    stamps[i.value] = clock.tick();
  }

  HistoryBuilder builder(h.num_sites());
  for (const Operation& op : h.operations()) {
    if (op.is_write())
      builder.write(op.site, op.object, op.value, op.time);
    else
      builder.read(op.site, op.object, op.value, op.time);
  }
  builder.logical_times(std::move(stamps));
  return builder.build();
}

}  // namespace timedc
