#include "core/trace_io.hpp"

#include <algorithm>
#include <charconv>
#include <vector>

namespace timedc {
namespace {

std::string format_object(ObjectId o) { return to_string(o); }

bool parse_object(std::string_view token, ObjectId& out) {
  if (token.size() == 1 && token[0] >= 'A' && token[0] <= 'Z') {
    out = ObjectId{static_cast<std::uint32_t>(token[0] - 'A')};
    return true;
  }
  if (token.size() > 3 && token.substr(0, 3) == "obj") {
    std::uint32_t n = 0;
    const auto* begin = token.data() + 3;
    const auto* end = token.data() + token.size();
    const auto [ptr, ec] = std::from_chars(begin, end, n);
    if (ec == std::errc{} && ptr == end) {
      out = ObjectId{n};
      return true;
    }
  }
  return false;
}

template <typename T>
bool parse_number(std::string_view token, T& out) {
  const auto* begin = token.data();
  const auto* end = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

TraceParseResult parse_failure(std::string message) {
  return TraceParseResult{std::nullopt, std::move(message), std::nullopt};
}

std::vector<std::string_view> split(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t') ++j;
    if (j > i) tokens.push_back(line.substr(i, j - i));
    i = j;
  }
  return tokens;
}

}  // namespace

std::string write_trace(const History& h, SimTime measured_eps) {
  std::string out = write_trace(h);
  if (!measured_eps.is_infinite() && measured_eps >= SimTime::zero()) {
    // Insert after the header lines so the directive stays near the top.
    const std::size_t sites_eol = out.find('\n', out.find("sites "));
    out.insert(sites_eol + 1,
               "eps " + std::to_string(measured_eps.as_micros()) + "\n");
  }
  return out;
}

std::string write_trace(const History& h) {
  std::string out = "# timedc trace\nsites " + std::to_string(h.num_sites()) + "\n";
  // Stable order: by effective time, ties by history index — this also
  // guarantees per-site monotonicity on re-parse.
  std::vector<OpIndex> order;
  for (std::uint32_t i = 0; i < h.size(); ++i) order.push_back(OpIndex{i});
  std::sort(order.begin(), order.end(), [&](OpIndex a, OpIndex b) {
    if (h.op(a).time != h.op(b).time) return h.op(a).time < h.op(b).time;
    return a < b;
  });
  for (OpIndex i : order) {
    const Operation& op = h.op(i);
    out += op.is_write() ? "w " : "r ";
    out += std::to_string(op.site.value) + " ";
    out += format_object(op.object) + " ";
    out += std::to_string(op.value.value) + " ";
    out += std::to_string(op.time.as_micros()) + "\n";
  }
  return out;
}

TraceParseResult parse_trace(std::string_view text) {
  struct Parsed {
    bool is_write;
    SiteId site;
    ObjectId object;
    Value value;
    SimTime time;
  };
  std::vector<Parsed> ops;
  std::optional<std::size_t> num_sites;
  std::optional<SimTime> measured_eps;

  std::size_t line_no = 0;
  std::size_t pos = 0;
  auto fail = [&](const std::string& what) {
    return parse_failure("line " + std::to_string(line_no) + ": " + what);
  };
  while (pos <= text.size()) {
    const std::size_t eol = std::min(text.find('\n', pos), text.size());
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    const auto tokens = split(line);
    if (tokens.empty()) {
      if (eol == text.size()) break;
      continue;
    }
    if (tokens[0] == "sites") {
      if (tokens.size() != 2) return fail("expected: sites <N>");
      std::size_t n = 0;
      if (!parse_number(tokens[1], n) || n == 0) {
        return fail("invalid site count '" + std::string(tokens[1]) + "'");
      }
      num_sites = n;
      continue;
    }
    if (tokens[0] == "eps") {
      if (tokens.size() != 2) return fail("expected: eps <us>");
      std::int64_t micros = 0;
      if (!parse_number(tokens[1], micros) || micros < 0) {
        return fail("invalid eps '" + std::string(tokens[1]) + "'");
      }
      measured_eps = SimTime::micros(micros);
      continue;
    }
    if (tokens[0] == "w" || tokens[0] == "r") {
      if (tokens.size() != 5) {
        return fail("expected: w|r <site> <object> <value> <time_us>");
      }
      Parsed op;
      op.is_write = tokens[0] == "w";
      std::uint32_t site = 0;
      if (!parse_number(tokens[1], site)) return fail("invalid site");
      op.site = SiteId{site};
      if (!parse_object(tokens[2], op.object)) {
        return fail("invalid object '" + std::string(tokens[2]) + "'");
      }
      std::int64_t value = 0;
      if (!parse_number(tokens[3], value)) return fail("invalid value");
      op.value = Value{value};
      std::int64_t micros = 0;
      if (!parse_number(tokens[4], micros)) return fail("invalid time");
      op.time = SimTime::micros(micros);
      ops.push_back(op);
      continue;
    }
    return fail("unknown directive '" + std::string(tokens[0]) + "'");
  }

  if (!num_sites) {
    return parse_failure("missing 'sites <N>' header");
  }
  for (std::size_t k = 0; k < ops.size(); ++k) {
    if (ops[k].site.value >= *num_sites) {
      return parse_failure("operation " + std::to_string(k) + " names site " +
                           std::to_string(ops[k].site.value) + " but sites = " +
                           std::to_string(*num_sites));
    }
  }
  // Append in (time, original order): per-site strict monotonicity checked
  // here so the builder's assertion never fires on user input.
  std::vector<std::size_t> order(ops.size());
  for (std::size_t k = 0; k < order.size(); ++k) order[k] = k;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return ops[a].time < ops[b].time;
  });
  std::vector<SimTime> last(*num_sites, SimTime::micros(-1));
  for (std::size_t k : order) {
    const Parsed& op = ops[k];
    if (op.time <= last[op.site.value]) {
      return parse_failure("site " + std::to_string(op.site.value) +
                           " has two operations at/before t=" +
                           std::to_string(op.time.as_micros()) +
                           "us (per-site times must strictly increase)");
    }
    last[op.site.value] = op.time;
  }
  // Duplicate written values are a History invariant too; detect gracefully.
  {
    std::unordered_map<ObjectId, std::unordered_map<Value, int>> seen;
    for (const Parsed& op : ops) {
      if (!op.is_write) continue;
      if (op.value == kInitialValue) {
        return parse_failure("writes of the initial value 0 are not allowed");
      }
      if (++seen[op.object][op.value] > 1) {
        return parse_failure("value " + std::to_string(op.value.value) +
                             " written twice to object " +
                             format_object(op.object));
      }
    }
  }

  HistoryBuilder builder(*num_sites);
  for (std::size_t k : order) {
    const Parsed& op = ops[k];
    if (op.is_write) {
      builder.write(op.site, op.object, op.value, op.time);
    } else {
      builder.read(op.site, op.object, op.value, op.time);
    }
  }
  return TraceParseResult{builder.build(), "", measured_eps};
}

}  // namespace timedc
