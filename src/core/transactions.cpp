#include "core/transactions.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/assert.hpp"

namespace timedc {

std::string Transaction::to_string() const {
  std::string s = "T" + std::to_string(site.value) + "[" +
                  std::to_string(begin.as_micros()) + "," +
                  std::to_string(commit.as_micros()) + "]{";
  for (std::size_t k = 0; k < ops.size(); ++k) {
    if (k > 0) s += " ";
    s += (ops[k].type == OpType::kWrite ? "w(" : "r(");
    s += timedc::to_string(ops[k].object) + ")" +
         std::to_string(ops[k].value.value);
  }
  return s + "}";
}

TxHistory::TxHistory(std::size_t num_sites)
    : num_sites_(num_sites), site_busy_until_(num_sites, SimTime::micros(-1)) {
  TIMEDC_ASSERT(num_sites > 0);
}

TxHistory& TxHistory::add(Transaction tx) {
  TIMEDC_ASSERT(tx.site.value < num_sites_);
  TIMEDC_ASSERT(tx.begin <= tx.commit);
  TIMEDC_ASSERT(tx.begin > site_busy_until_[tx.site.value] &&
                "a site's transactions must not overlap");
  TIMEDC_ASSERT(!tx.ops.empty());
  for (const TxOp& op : tx.ops) {
    if (op.type != OpType::kWrite) continue;
    TIMEDC_ASSERT(op.value != kInitialValue);
    for (const Transaction& other : txs_) {
      for (const TxOp& o : other.ops) {
        TIMEDC_ASSERT(!(o.type == OpType::kWrite && o.object == op.object &&
                        o.value == op.value) &&
                      "written values must be unique per object");
      }
    }
  }
  site_busy_until_[tx.site.value] = tx.commit;
  txs_.push_back(std::move(tx));
  return *this;
}

namespace {

/// Backtracking over serial orders of whole transactions, memoizing
/// (placed set, committed value per object) states.
class TxSearcher {
 public:
  TxSearcher(const TxHistory& h, bool real_time, const SearchLimits& limits)
      : h_(h), real_time_(real_time), limits_(limits) {}

  SserResult run() {
    placed_.assign(h_.size(), false);
    order_.clear();
    // Thin-air pre-check: every non-initial read value must be written by
    // some transaction (possibly its own).
    std::unordered_map<ObjectId, std::unordered_set<std::int64_t>> written;
    for (std::size_t t = 0; t < h_.size(); ++t) {
      for (const TxOp& op : h_.tx(t).ops) {
        if (op.type == OpType::kWrite) written[op.object].insert(op.value.value);
      }
    }
    for (std::size_t t = 0; t < h_.size(); ++t) {
      for (const TxOp& op : h_.tx(t).ops) {
        if (op.type == OpType::kRead && op.value != kInitialValue &&
            !written[op.object].contains(op.value.value)) {
          return {Verdict::kNo, {}};
        }
      }
    }
    SserResult result;
    if (dfs()) {
      result.verdict = Verdict::kYes;
      result.witness = order_;
    } else {
      result.verdict = limit_hit_ ? Verdict::kLimit : Verdict::kNo;
    }
    return result;
  }

 private:
  /// Execute transaction t against `current_`; returns false (and leaves
  /// `current_` untouched) if some read is illegal.
  bool try_apply(std::size_t t,
                 std::vector<std::pair<ObjectId, std::optional<Value>>>& undo) {
    // Transaction-local view: own writes are visible to own later reads.
    std::unordered_map<ObjectId, Value> local;
    for (const TxOp& op : h_.tx(t).ops) {
      if (op.type == OpType::kWrite) {
        local[op.object] = op.value;
        continue;
      }
      const auto own = local.find(op.object);
      Value v;
      if (own != local.end()) {
        v = own->second;
      } else {
        const auto it = current_.find(op.object);
        v = it == current_.end() ? kInitialValue : it->second;
      }
      if (v != op.value) return false;
    }
    for (const auto& [obj, val] : local) {
      const auto it = current_.find(obj);
      undo.emplace_back(obj, it == current_.end()
                                 ? std::nullopt
                                 : std::optional<Value>(it->second));
      current_[obj] = val;
    }
    return true;
  }

  bool dfs() {
    if (order_.size() == h_.size()) return true;
    if (++nodes_ > limits_.max_nodes) {
      limit_hit_ = true;
      return false;
    }
    const std::uint64_t key = state_key();
    if (failed_.contains(key)) return false;
    for (std::size_t t = 0; t < h_.size(); ++t) {
      if (placed_[t]) continue;
      if (real_time_ && !minimal(t)) continue;
      std::vector<std::pair<ObjectId, std::optional<Value>>> undo;
      if (!try_apply(t, undo)) continue;
      placed_[t] = true;
      order_.push_back(t);
      if (dfs()) return true;
      placed_[t] = false;
      order_.pop_back();
      for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
        if (it->second)
          current_[it->first] = *it->second;
        else
          current_.erase(it->first);
      }
      if (limit_hit_) return false;
    }
    failed_.insert(key);
    return false;
  }

  bool minimal(std::size_t t) const {
    for (std::size_t k = 0; k < h_.size(); ++k) {
      if (!placed_[k] && k != t && h_.precedes(k, t)) return false;
    }
    return true;
  }

  std::uint64_t state_key() const {
    std::uint64_t hash = real_time_ ? 0x9ddfea08eb382d69ULL : 0xcbf29ce484222325ULL;
    auto mix = [&hash](std::uint64_t v) {
      hash ^= v + 0x9e3779b97f4a7c15ULL + (hash << 6) + (hash >> 2);
    };
    std::uint64_t word = 0;
    for (std::size_t j = 0; j < placed_.size(); ++j) {
      if (placed_[j]) word |= 1ULL << (j & 63);
      if ((j & 63) == 63) {
        mix(word);
        word = 0;
      }
    }
    mix(word);
    std::uint64_t acc = 0;
    for (const auto& [obj, val] : current_) {
      std::uint64_t e = (static_cast<std::uint64_t>(obj.value) << 32) ^
                        static_cast<std::uint64_t>(val.value);
      e *= 0xbf58476d1ce4e5b9ULL;
      e ^= e >> 29;
      acc += e;
    }
    mix(acc);
    return hash;
  }

  const TxHistory& h_;
  bool real_time_;
  SearchLimits limits_;
  std::vector<bool> placed_;
  std::vector<std::size_t> order_;
  std::unordered_map<ObjectId, Value> current_;
  std::uint64_t nodes_ = 0;
  bool limit_hit_ = false;
  std::unordered_set<std::uint64_t> failed_;
};

}  // namespace

SserResult check_strict_serializable(const TxHistory& h,
                                     const SearchLimits& limits) {
  return TxSearcher(h, /*real_time=*/true, limits).run();
}

SserResult check_serializable(const TxHistory& h, const SearchLimits& limits) {
  return TxSearcher(h, /*real_time=*/false, limits).run();
}

TxHistory from_interval_history(const IntervalHistory& h) {
  // Append in invocation order so per-site non-overlap carries over.
  std::vector<std::size_t> order(h.size());
  for (std::size_t j = 0; j < order.size(); ++j) order[j] = j;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return h.op(a).invocation < h.op(b).invocation;
  });
  TxHistory out(h.num_sites());
  for (std::size_t j : order) {
    const IntervalOp& op = h.op(j);
    Transaction tx;
    tx.site = op.site;
    tx.begin = op.invocation;
    tx.commit = op.response;
    tx.ops.push_back(TxOp{op.type, op.object, op.value});
    out.add(std::move(tx));
  }
  return out;
}

}  // namespace timedc
