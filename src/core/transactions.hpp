// Transactions and strict serializability (Eswaran et al. [14],
// Papadimitriou [30]).
//
// Section 2 of the paper places linearizability inside the database
// tradition: "LIN can be seen as a particular case of strict
// serializability where each transaction is a predefined operation on a
// single object". This module supplies the general case: transactions are
// blocks of reads/writes with a real-time interval [begin, commit]; a
// history is strictly serializable iff there is a total order of the
// transactions that is legal (each read sees the latest preceding write,
// within its own transaction first) and respects real-time precedence
// (t1.commit < t2.begin implies t1 before t2).
//
// The paper's reduction is executable: a single-operation transaction
// history is strictly serializable iff the corresponding interval history
// is linearizable (property-tested in transactions_test.cpp).
#pragma once

#include <string>
#include <vector>

#include "core/checkers.hpp"
#include "core/history.hpp"
#include "core/interval.hpp"

namespace timedc {

struct TxOp {
  OpType type = OpType::kRead;
  ObjectId object;
  Value value;  // value written / value the read returned
};

struct Transaction {
  SiteId site;
  SimTime begin;
  SimTime commit;
  std::vector<TxOp> ops;

  std::string to_string() const;
};

/// A set of transactions; per-site transactions must not overlap in time,
/// and written values are unique per object across the whole history.
class TxHistory {
 public:
  explicit TxHistory(std::size_t num_sites);

  /// Append a transaction (validates intervals and unique writes).
  TxHistory& add(Transaction tx);

  std::size_t size() const { return txs_.size(); }
  std::size_t num_sites() const { return num_sites_; }
  const Transaction& tx(std::size_t i) const { return txs_[i]; }

  /// Real-time precedence between transactions.
  bool precedes(std::size_t a, std::size_t b) const {
    return txs_[a].commit < txs_[b].begin;
  }

 private:
  std::size_t num_sites_;
  std::vector<Transaction> txs_;
  std::vector<SimTime> site_busy_until_;
};

struct SserResult {
  Verdict verdict = Verdict::kNo;
  std::vector<std::size_t> witness;  // a serial order, when kYes
  bool ok() const { return verdict == Verdict::kYes; }
};

/// Strict serializability: serial order, legal, respecting real time.
SserResult check_strict_serializable(const TxHistory& h,
                                     const SearchLimits& limits = {});

/// Plain serializability (no real-time constraint): the paper's contrast
/// between ordering-only and timed criteria at the transaction level.
SserResult check_serializable(const TxHistory& h,
                              const SearchLimits& limits = {});

/// The paper's reduction: wrap every operation of an interval history in
/// its own transaction.
TxHistory from_interval_history(const IntervalHistory& h);

}  // namespace timedc
