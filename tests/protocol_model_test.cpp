// The strongest protocol <-> model integration: short recorded runs of the
// lifetime protocols are fed to the EXACT checkers.
//   * TimedSerialCache runs must be sequentially consistent ([39]'s theorem
//     that the lifetime rules induce SC) and, at Delta + messaging slack,
//     fully TSC;
//   * TimedCausalCache runs (sound eviction rule) must be causally
//     consistent by the exhaustive per-site search, and fully TCC at
//     Delta + slack.
#include <gtest/gtest.h>

#include "core/checkers.hpp"
#include "protocol/experiment.hpp"

namespace timedc {
namespace {

SimTime us(std::int64_t n) { return SimTime::micros(n); }
SimTime ms(std::int64_t n) { return SimTime::millis(n); }

ExperimentConfig tiny(ProtocolKind kind, std::uint64_t seed) {
  ExperimentConfig config;
  config.kind = kind;
  config.delta = ms(3);
  config.workload.num_clients = 3;
  config.workload.num_objects = 3;
  config.workload.write_ratio = 0.35;
  config.workload.mean_think_time = ms(5);
  config.workload.horizon = ms(45);
  config.min_latency = us(100);
  config.max_latency = us(600);
  config.seed = seed;
  return config;
}

SearchLimits generous() {
  SearchLimits limits;
  limits.max_nodes = 8'000'000;
  return limits;
}

class SerialProtocolModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerialProtocolModel, RecordedRunIsExactlyTsc) {
  const auto config = tiny(ProtocolKind::kTimedSerial, GetParam());
  const auto r = run_experiment(config);
  ASSERT_GE(r.history.size(), 10u);
  const SimTime slack = config.max_latency * 4;
  const auto tsc = check_tsc(
      r.history, TimedSpecEpsilon{config.delta + slack, SimTime::zero()},
      generous());
  EXPECT_TRUE(tsc.timing.all_on_time);
  EXPECT_EQ(tsc.sc.verdict, Verdict::kYes)
      << "lifetime rules must induce SC ([39])";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerialProtocolModel,
                         ::testing::Range<std::uint64_t>(1, 13));

class CausalProtocolModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CausalProtocolModel, RecordedRunIsExactlyTcc) {
  const auto config = tiny(ProtocolKind::kTimedCausal, GetParam());
  const auto r = run_experiment(config);
  ASSERT_GE(r.history.size(), 10u);
  const SimTime slack = config.max_latency * 4;
  const auto tcc = check_tcc(
      r.history, TimedSpecEpsilon{config.delta + slack, SimTime::zero()},
      generous());
  EXPECT_TRUE(tcc.timing.all_on_time);
  EXPECT_EQ(tcc.cc.verdict, Verdict::kYes)
      << "causal lifetime rules (sound eviction) must induce CC";
}

INSTANTIATE_TEST_SUITE_P(Seeds, CausalProtocolModel,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace timedc
