// Flight recorder: ring semantics, overwrite accounting, dump/convert
// round-trip, snapshot safety under a live producer, and the fatal-signal
// dump (fork + SIGSEGV: the child crashes, the parent converts the dump).
#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hpp"

namespace timedc {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string temp_path(const char* stem) {
  return std::string(::testing::TempDir()) + stem + "." +
         std::to_string(::getpid());
}

TEST(FlightRecorder, RecordsInOrderBelowCapacity) {
  FlightRecorder fr(/*site=*/7, /*capacity=*/8);
  for (int i = 0; i < 5; ++i) {
    fr.record(TraceEventType::kReactorStage, 1000 + i, kNoObject,
              static_cast<std::uint64_t>(i), i, i * 10);
  }
  EXPECT_EQ(fr.recorded(), 5u);
  EXPECT_EQ(fr.overwritten(), 0u);
  const std::vector<FlightRecord> snap = fr.snapshot();
  ASSERT_EQ(snap.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(snap[i].t_us, 1000 + i);
    EXPECT_EQ(snap[i].site, 7u);
    EXPECT_EQ(snap[i].type,
              static_cast<std::uint8_t>(TraceEventType::kReactorStage));
    EXPECT_EQ(snap[i].op, static_cast<std::uint32_t>(i));
    EXPECT_EQ(snap[i].b, i * 10);
  }
}

TEST(FlightRecorder, OverwritesOldestOnWrap) {
  FlightRecorder fr(/*site=*/1, /*capacity=*/8);
  for (int i = 0; i < 20; ++i) {
    fr.record(TraceEventType::kReactorSlowTick, i);
  }
  EXPECT_EQ(fr.recorded(), 20u);
  EXPECT_EQ(fr.overwritten(), 12u);
  const std::vector<FlightRecord> snap = fr.snapshot();
  // The snapshot discards the slot the producer may have been mid-write in
  // (epoch guard), so at least capacity-1 of the newest records survive.
  ASSERT_GE(snap.size(), 7u);
  ASSERT_LE(snap.size(), 8u);
  // Whatever survives is the newest suffix, oldest first.
  const std::int64_t first = snap.front().t_us;
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].t_us, first + static_cast<std::int64_t>(i));
  }
  EXPECT_EQ(snap.back().t_us, 19);
}

TEST(FlightRecorder, DisabledCostsNothingAndKeepsNothing) {
  FlightRecorder fr(/*site=*/1, /*capacity=*/8, /*enabled=*/false);
  fr.record(TraceEventType::kReactorStage, 1);
  EXPECT_EQ(fr.recorded(), 0u);
  EXPECT_TRUE(fr.snapshot().empty());
  fr.set_enabled(true);
  fr.record(TraceEventType::kReactorStage, 2);
  EXPECT_EQ(fr.recorded(), 1u);
}

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwo) {
  FlightRecorder fr(/*site=*/1, /*capacity=*/100);
  EXPECT_EQ(fr.capacity(), 128u);
}

TEST(FlightRecorder, DumpConvertRoundTrip) {
  FlightRecorder fr(/*site=*/3, /*capacity=*/16);
  for (int i = 0; i < 10; ++i) {
    fr.record(TraceEventType::kReadStaleness, 5000 + i, ObjectId{7},
              static_cast<std::uint64_t>(100 + i), 0, 42 + i);
  }
  const std::string path = temp_path("fr_roundtrip");
  ASSERT_TRUE(fr.dump_to_file(path.c_str()));

  std::vector<TraceEvent> events;
  std::uint64_t overwritten = 99;
  ASSERT_TRUE(flight_to_events(read_file(path), &events, &overwritten));
  EXPECT_EQ(overwritten, 0u);
  ASSERT_EQ(events.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(events[i].type, TraceEventType::kReadStaleness);
    EXPECT_EQ(events[i].at.as_micros(), 5000 + i);
    EXPECT_EQ(events[i].site, SiteId{3});
    EXPECT_EQ(events[i].object, ObjectId{7});
    EXPECT_EQ(events[i].op, static_cast<std::uint64_t>(100 + i));
    EXPECT_EQ(events[i].b, 42 + i);
  }
  // The converted stream is valid canonical JSONL (parse-back closes the
  // loop the CI validator relies on).
  const std::string jsonl = trace_to_jsonl(events);
  const auto parsed = parse_trace_jsonl(jsonl);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), events.size());
  std::remove(path.c_str());
}

TEST(FlightRecorder, ConverterRejectsMalformedDumps) {
  std::vector<TraceEvent> events;
  EXPECT_FALSE(flight_to_events("", &events));
  EXPECT_FALSE(flight_to_events("short", &events));

  FlightRecorder fr(/*site=*/1, /*capacity=*/8);
  fr.record(TraceEventType::kReactorStage, 1);
  const std::string path = temp_path("fr_malformed");
  ASSERT_TRUE(fr.dump_to_file(path.c_str()));
  std::string bytes = read_file(path);
  std::remove(path.c_str());

  std::string bad = bytes;
  bad[0] ^= 0xFF;  // magic
  EXPECT_FALSE(flight_to_events(bad, &events));
  bad = bytes;
  bad[4] = 99;  // version
  EXPECT_FALSE(flight_to_events(bad, &events));
  bad = bytes;
  bad.resize(bad.size() - 1);  // truncated ring
  EXPECT_FALSE(flight_to_events(bad, &events));
  // Unknown event types are skipped, not fatal: a newer writer's dump
  // still converts (forward compatibility for the known prefix).
  bad = bytes;
  bad[sizeof(FlightFileHeader) + 12] = 0xEE;  // record 0's type byte
  events.clear();
  EXPECT_TRUE(flight_to_events(bad, &events));
  EXPECT_TRUE(events.empty());
}

TEST(FlightRecorder, SnapshotUnderLiveProducerNeverTears) {
  // One producer hammers the ring while a reader snapshots concurrently;
  // every record a snapshot returns must be internally consistent
  // (t_us == a == b is the producer's invariant).
  FlightRecorder fr(/*site=*/5, /*capacity=*/64);
  std::atomic<bool> stop{false};
  std::thread producer([&]() {
    std::int64_t t = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      fr.record(TraceEventType::kReactorStage, t, kNoObject, 0, t, t);
      ++t;
    }
  });
  for (int iter = 0; iter < 200; ++iter) {
    const std::vector<FlightRecord> snap = fr.snapshot();
    for (const FlightRecord& r : snap) {
      ASSERT_EQ(r.t_us, r.a);
      ASSERT_EQ(r.t_us, r.b);
      ASSERT_EQ(r.site, 5u);
    }
    // Append order is preserved.
    for (std::size_t i = 1; i < snap.size(); ++i) {
      ASSERT_EQ(snap[i].t_us, snap[i - 1].t_us + 1);
    }
  }
  stop.store(true);
  producer.join();
}

TEST(FlightRecorder, FatalSignalDumpSurvivesSigsegv) {
  const std::string prefix = temp_path("fr_fatal");
  const std::string dump_path = prefix + ".site11.fr";
  std::remove(dump_path.c_str());

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: record some events, install the fatal dump, crash. Note the
    // recorder outlives the crash by construction (stack, never unwound).
    FlightRecorder fr(/*site=*/11, /*capacity=*/32);
    for (int i = 0; i < 12; ++i) {
      fr.record(TraceEventType::kReactorSlowTick, 100 + i, kNoObject, 0,
                1000 + i, 20000);
    }
    register_flight_recorder(&fr);
    install_fatal_dump(prefix.c_str());
    ::raise(SIGSEGV);
    _exit(0);  // unreachable
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  // SA_RESETHAND + re-raise: the child still dies BY the signal, so crash
  // reporting (exit status, core policy) is unchanged by the dump.
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);

  std::vector<TraceEvent> events;
  std::uint64_t overwritten = 0;
  ASSERT_TRUE(flight_to_events(read_file(dump_path), &events, &overwritten));
  EXPECT_EQ(overwritten, 0u);
  ASSERT_EQ(events.size(), 12u);
  EXPECT_EQ(events.front().type, TraceEventType::kReactorSlowTick);
  EXPECT_EQ(events.front().at.as_micros(), 100);
  EXPECT_EQ(events.front().site, SiteId{11});
  EXPECT_EQ(events.back().a, 1011);
  std::remove(dump_path.c_str());
}

}  // namespace
}  // namespace timedc
