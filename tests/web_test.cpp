// Tests for the web-cache consistency protocols of Section 4: freshness
// policies, invalidation coherence, and the weak-vs-strong consistency
// tradeoffs of [10] and [19].
#include <gtest/gtest.h>

#include <memory>

#include "web/web_experiment.hpp"

namespace timedc {
namespace {

SimTime us(std::int64_t n) { return SimTime::micros(n); }
SimTime ms(std::int64_t n) { return SimTime::millis(n); }

class WebFixture : public ::testing::Test {
 protected:
  void init(WebPolicyConfig config) {
    net_ = std::make_unique<Network>(sim_, 2,
                                     std::make_unique<FixedLatency>(us(100)),
                                     NetworkConfig{}, Rng(1));
    origin_ = std::make_unique<WebOriginServer>(
        sim_, *net_, SiteId{1}, config.policy == WebPolicy::kInvalidate, 4096);
    origin_->attach();
    proxy_ = std::make_unique<WebProxyCache>(sim_, *net_, SiteId{0}, SiteId{1},
                                             config);
    proxy_->attach();
  }

  DocVersion get(DocumentId doc) {
    DocVersion got = 0;
    proxy_->request(doc, [&](DocVersion v, SimTime) { got = v; });
    sim_.run_until();
    return got;
  }

  void advance(SimTime by) {
    sim_.schedule_after(by, [] {});
    sim_.run_until();
  }

  Simulator sim_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<WebOriginServer> origin_;
  std::unique_ptr<WebProxyCache> proxy_;
};

TEST_F(WebFixture, FixedTtlServesFromCacheWithinTtl) {
  WebPolicyConfig c;
  c.policy = WebPolicy::kFixedTtl;
  c.fixed_ttl = ms(100);
  init(c);
  EXPECT_EQ(get(DocumentId{0}), 1u);
  origin_->update(DocumentId{0});
  // Within the TTL the stale version is served (weak consistency).
  EXPECT_EQ(get(DocumentId{0}), 1u);
  EXPECT_EQ(proxy_->stats().hits, 1u);
  // After the TTL the proxy revalidates and gets version 2.
  advance(ms(200));
  EXPECT_EQ(get(DocumentId{0}), 2u);
  EXPECT_EQ(proxy_->stats().validations, 1u);
}

TEST_F(WebFixture, FixedTtlRevalidation304ExtendsFreshness) {
  WebPolicyConfig c;
  c.policy = WebPolicy::kFixedTtl;
  c.fixed_ttl = ms(50);
  init(c);
  EXPECT_EQ(get(DocumentId{0}), 1u);
  advance(ms(100));
  EXPECT_EQ(get(DocumentId{0}), 1u);  // revalidated via 304
  EXPECT_EQ(proxy_->stats().validations_304, 1u);
  EXPECT_EQ(origin_->stats().not_modified, 1u);
  // Immediately after, the entry is fresh again.
  EXPECT_EQ(get(DocumentId{0}), 1u);
  EXPECT_EQ(proxy_->stats().hits, 1u);
}

TEST_F(WebFixture, PollEveryTimeNeverServesStale) {
  WebPolicyConfig c;
  c.policy = WebPolicy::kPollEveryTime;
  init(c);
  EXPECT_EQ(get(DocumentId{0}), 1u);
  origin_->update(DocumentId{0});
  EXPECT_EQ(get(DocumentId{0}), 2u);
  EXPECT_EQ(proxy_->stats().hits, 0u);
  // But every request cost an origin round trip.
  EXPECT_EQ(origin_->stats().gets + origin_->stats().ims_checks, 2u);
}

TEST_F(WebFixture, InvalidationGivesStrongConsistencyWithHits) {
  WebPolicyConfig c;
  c.policy = WebPolicy::kInvalidate;
  init(c);
  EXPECT_EQ(get(DocumentId{0}), 1u);
  // Quiet document: hits forever, no revalidation.
  advance(SimTime::seconds(10));
  EXPECT_EQ(get(DocumentId{0}), 1u);
  EXPECT_EQ(proxy_->stats().hits, 1u);
  // Update: the origin pushes an invalidation; next GET refetches.
  origin_->update(DocumentId{0});
  sim_.run_until();
  EXPECT_EQ(proxy_->stats().invalidations_received, 1u);
  EXPECT_EQ(get(DocumentId{0}), 2u);
}

TEST_F(WebFixture, AdaptiveTtlGrowsWithDocumentAge) {
  WebPolicyConfig c;
  c.policy = WebPolicy::kAdaptiveTtl;
  c.adaptive_factor = 0.5;
  c.adaptive_min = ms(1);
  c.adaptive_max = SimTime::seconds(100);
  init(c);
  // Fetch a brand-new document: tiny TTL.
  origin_->update(DocumentId{0});  // last_modified = now
  EXPECT_EQ(get(DocumentId{0}), 2u);
  advance(ms(10));
  get(DocumentId{0});
  const auto validations_young = proxy_->stats().validations;
  EXPECT_GE(validations_young, 1u);  // young doc: distrusted quickly
  // Age the document a lot, revalidate once; now the TTL is huge.
  advance(SimTime::seconds(60));
  get(DocumentId{0});
  const auto validations_before = proxy_->stats().validations;
  advance(SimTime::seconds(10));
  get(DocumentId{0});
  EXPECT_EQ(proxy_->stats().validations, validations_before);  // cache hit
}

// --- Experiment-level comparisons -------------------------------------------

WebExperimentConfig experiment_base(std::uint64_t seed) {
  WebExperimentConfig config;
  config.num_proxies = 3;
  config.num_documents = 16;
  config.mean_update_interval = ms(500);
  config.mean_request_interval = ms(10);
  config.horizon = SimTime::seconds(8);
  config.seed = seed;
  return config;
}

TEST(WebExperimentTest, InvalidationHasNoStaleServesBeyondPropagation) {
  auto config = experiment_base(5);
  config.policy.policy = WebPolicy::kInvalidate;
  const auto result = run_web_experiment(config);
  ASSERT_GT(result.requests, 100u);
  // Stale serves can only happen while an invalidation is in flight.
  EXPECT_LE(result.max_stale_age, config.max_latency + ms(1));
}

TEST(WebExperimentTest, LargeTtlIsStalerAndCheaperThanSmallTtl) {
  auto small = experiment_base(6);
  small.policy.policy = WebPolicy::kFixedTtl;
  small.policy.fixed_ttl = ms(20);
  auto large = experiment_base(6);
  large.policy.policy = WebPolicy::kFixedTtl;
  large.policy.fixed_ttl = SimTime::seconds(5);
  const auto s = run_web_experiment(small);
  const auto l = run_web_experiment(large);
  EXPECT_GE(l.stale_fraction, s.stale_fraction);
  EXPECT_LE(l.origin_msgs_per_request, s.origin_msgs_per_request);
}

TEST(WebExperimentTest, PollEveryTimeBeatsTtlOnStalenessCostsMessages) {
  auto poll = experiment_base(7);
  poll.policy.policy = WebPolicy::kPollEveryTime;
  auto ttl = experiment_base(7);
  ttl.policy.policy = WebPolicy::kFixedTtl;
  ttl.policy.fixed_ttl = SimTime::seconds(2);
  const auto p = run_web_experiment(poll);
  const auto t = run_web_experiment(ttl);
  EXPECT_LE(p.stale_fraction, t.stale_fraction);
  EXPECT_GE(p.origin_msgs_per_request, t.origin_msgs_per_request);
}

TEST(WebExperimentTest, DeterministicForSeed) {
  auto config = experiment_base(8);
  config.policy.policy = WebPolicy::kAdaptiveTtl;
  const auto a = run_web_experiment(config);
  const auto b = run_web_experiment(config);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.stale_serves, b.stale_serves);
  EXPECT_EQ(a.network.messages_sent, b.network.messages_sent);
}

TEST(WebExperimentTest, StaleFractionDecreasesWithTtlSweep) {
  // The "Delta knob" of the paper's web application: smaller TTL (= Delta)
  // means fresher but costlier. Monotone along the sweep.
  double prev_stale = -1;
  double prev_msgs = 1e18;
  for (const std::int64_t ttl_ms : {10, 100, 1000, 4000}) {
    auto config = experiment_base(9);
    config.policy.policy = WebPolicy::kFixedTtl;
    config.policy.fixed_ttl = ms(ttl_ms);
    const auto r = run_web_experiment(config);
    EXPECT_GE(r.stale_fraction + 0.02, prev_stale)
        << "ttl " << ttl_ms << "ms";
    EXPECT_LE(r.origin_msgs_per_request - 0.05, prev_msgs)
        << "ttl " << ttl_ms << "ms";
    prev_stale = r.stale_fraction;
    prev_msgs = r.origin_msgs_per_request;
  }
}

}  // namespace
}  // namespace timedc
