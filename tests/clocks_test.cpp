// Tests for the clock substrate: Lamport, vector and plausible clocks, the
// xi maps of Section 5.4 (including the paper's Figure 7 values), and the
// approximately-synchronized physical clock models of Section 3.2.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "clocks/lamport_clock.hpp"
#include "clocks/physical_clock.hpp"
#include "clocks/plausible_clock.hpp"
#include "clocks/vector_clock.hpp"
#include "clocks/xi_map.hpp"
#include "common/rng.hpp"

namespace timedc {
namespace {

VectorTimestamp vt(std::vector<std::uint64_t> v) {
  return VectorTimestamp(std::move(v));
}

TEST(VectorClockTest, CompareBasics) {
  EXPECT_EQ(vt({3, 4}).compare(vt({3, 4})), Ordering::kEqual);
  EXPECT_EQ(vt({3, 2}).compare(vt({3, 4})), Ordering::kBefore);
  EXPECT_EQ(vt({3, 4}).compare(vt({3, 2})), Ordering::kAfter);
  EXPECT_EQ(vt({2, 4}).compare(vt({3, 2})), Ordering::kConcurrent);
}

TEST(VectorClockTest, MergeMaxMin) {
  const auto mx = VectorTimestamp::merge_max(vt({2, 4}), vt({3, 2}));
  EXPECT_EQ(mx, vt({3, 4}));
  const auto mn = VectorTimestamp::merge_min(vt({2, 4}), vt({3, 2}));
  EXPECT_EQ(mn, vt({2, 2}));
  // max dominates both inputs; min is dominated by both (Section 5.3 needs).
  EXPECT_TRUE(vt({2, 4}).dominated_by(mx));
  EXPECT_TRUE(vt({3, 2}).dominated_by(mx));
  EXPECT_TRUE(mn.dominated_by(vt({2, 4})));
  EXPECT_TRUE(mn.dominated_by(vt({3, 2})));
}

TEST(VectorClockTest, TickAdvancesOwnComponent) {
  VectorClock c(3, SiteId{1});
  EXPECT_EQ(c.tick(), vt({0, 1, 0}));
  EXPECT_EQ(c.tick(), vt({0, 2, 0}));
}

TEST(VectorClockTest, ReceiveMergesThenTicks) {
  VectorClock c(3, SiteId{0});
  c.tick();  // <1,0,0>
  const auto after = c.receive(vt({0, 5, 2}));
  EXPECT_EQ(after, vt({2, 5, 2}));
}

TEST(VectorClockTest, MessagePassingCausality) {
  VectorClock a(2, SiteId{0}), b(2, SiteId{1});
  const auto send = a.tick();
  const auto recv = b.receive(send);
  const auto later = b.tick();
  EXPECT_EQ(send.compare(recv), Ordering::kBefore);
  EXPECT_EQ(send.compare(later), Ordering::kBefore);
  const auto a_solo = a.tick();
  EXPECT_EQ(a_solo.compare(later), Ordering::kConcurrent);
}

TEST(VectorClockTest, EventCountAndToString) {
  EXPECT_EQ(vt({35, 4, 0, 72}).event_count(), 111u);
  EXPECT_EQ(vt({3, 4}).to_string(), "<3, 4>");
}

TEST(LamportClockTest, CausalOrderPreserved) {
  LamportClock a(SiteId{0}), b(SiteId{1});
  const auto s = a.tick();
  const auto r = b.receive(s);
  EXPECT_EQ(s.compare(r), Ordering::kBefore);
}

TEST(LamportClockTest, TotalOrderViaSiteTiebreak) {
  const LamportTimestamp x{5, SiteId{0}};
  const LamportTimestamp y{5, SiteId{1}};
  EXPECT_EQ(x.compare(y), Ordering::kBefore);
  EXPECT_EQ(y.compare(x), Ordering::kAfter);
  EXPECT_EQ(x.compare(x), Ordering::kEqual);
}

// --- Plausible clocks ------------------------------------------------------

/// Drives N sites through a random message-passing computation, maintaining
/// vector (ground truth) and REV plausible clocks side by side.
struct DualComputation {
  std::vector<VectorTimestamp> truth;
  std::vector<PlausibleTimestamp> plausible;

  void run(std::size_t sites, std::size_t entries, std::size_t events,
           std::uint64_t seed) {
    Rng rng(seed);
    std::vector<VectorClock> vcs;
    std::vector<PlausibleClock> pcs;
    for (std::uint32_t s = 0; s < sites; ++s) {
      vcs.emplace_back(sites, SiteId{s});
      pcs.emplace_back(entries, SiteId{s});
    }
    for (std::size_t e = 0; e < events; ++e) {
      const auto s = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(sites) - 1));
      if (!truth.empty() && rng.bernoulli(0.4)) {
        // Receive a random earlier event's timestamp.
        const auto k = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(truth.size()) - 1));
        truth.push_back(vcs[s].receive(truth[k]));
        plausible.push_back(pcs[s].receive(plausible[k]));
      } else {
        truth.push_back(vcs[s].tick());
        plausible.push_back(pcs[s].tick());
      }
    }
  }
};

class PlausibleClockProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlausibleClockProperty, NeverContradictsCausality) {
  DualComputation dual;
  dual.run(/*sites=*/6, /*entries=*/3, /*events=*/120, GetParam());
  for (std::size_t i = 0; i < dual.truth.size(); ++i) {
    for (std::size_t j = 0; j < dual.truth.size(); ++j) {
      if (i == j) continue;
      const Ordering truth = dual.truth[i].compare(dual.truth[j]);
      const Ordering rev = dual.plausible[i].compare(dual.plausible[j]);
      if (truth == Ordering::kBefore) {
        // Causally ordered pairs must be ordered identically.
        EXPECT_EQ(rev, Ordering::kBefore)
            << dual.truth[i].to_string() << " vs " << dual.truth[j].to_string();
      }
      if (rev == Ordering::kConcurrent) {
        // REV may wrongly order concurrent pairs but never invents
        // concurrency for ordered pairs.
        EXPECT_EQ(truth, Ordering::kConcurrent);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlausibleClockProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(PlausibleClockTest, FoldedSitesShareEntry) {
  PlausibleClock c0(2, SiteId{0});
  PlausibleClock c2(2, SiteId{2});  // 2 mod 2 == 0: same entry as site 0
  EXPECT_EQ(c0.own_entry(), c2.own_entry());
}

TEST(PlausibleClockTest, MergeMaxMin) {
  const PlausibleTimestamp a({2, 4}, SiteId{0});
  const PlausibleTimestamp b({3, 2}, SiteId{1});
  EXPECT_EQ(PlausibleTimestamp::merge_max(a, b).entries(),
            (std::vector<std::uint64_t>{3, 4}));
  EXPECT_EQ(PlausibleTimestamp::merge_min(a, b).entries(),
            (std::vector<std::uint64_t>{2, 2}));
}

TEST(PlausibleClockTest, EqualVectorsDifferentSitesAreConcurrent) {
  const PlausibleTimestamp a({1, 1}, SiteId{0});
  const PlausibleTimestamp b({1, 1}, SiteId{1});
  EXPECT_EQ(a.compare(b), Ordering::kConcurrent);
  EXPECT_EQ(a.compare(a), Ordering::kEqual);
}

// --- xi maps ---------------------------------------------------------------

TEST(XiMapTest, PaperFigure7Values) {
  const NormXiMap norm;
  // xi(<3,4>) = 5, xi(<3,2>) ~ 3.61, xi(<2,4>) ~ 4.47 (Figure 7).
  EXPECT_DOUBLE_EQ(norm(vt({3, 4})), 5.0);
  EXPECT_NEAR(norm(vt({3, 2})), 3.61, 0.005);
  EXPECT_NEAR(norm(vt({2, 4})), 4.47, 0.005);
}

TEST(XiMapTest, SumCountsGlobalEvents) {
  const SumXiMap sum;
  // "if the current logical time of a site is <35,4,0,72> then this site is
  // aware of 111 global events" (Section 5.4).
  EXPECT_DOUBLE_EQ(sum(vt({35, 4, 0, 72})), 111.0);
  EXPECT_DOUBLE_EQ(sum(vt({2, 1, 0, 18})), 21.0);
}

TEST(XiMapTest, WeightedSumMonotone) {
  const WeightedSumXiMap w({1.0, 2.0, 0.5});
  EXPECT_LT(w(vt({1, 1, 1})), w(vt({1, 2, 1})));
}

class XiDefinition5Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XiDefinition5Property, AllMapsRespectDefinition5) {
  DualComputation dual;
  dual.run(/*sites=*/4, /*entries=*/4, /*events=*/80, GetParam());
  const SumXiMap sum;
  const NormXiMap norm;
  const WeightedSumXiMap weighted({1.0, 0.5, 2.0, 1.5});
  for (std::size_t i = 0; i < dual.truth.size(); ++i) {
    for (std::size_t j = 0; j < dual.truth.size(); ++j) {
      EXPECT_TRUE(xi_respects_definition5(sum, dual.truth[i], dual.truth[j]));
      EXPECT_TRUE(xi_respects_definition5(norm, dual.truth[i], dual.truth[j]));
      EXPECT_TRUE(
          xi_respects_definition5(weighted, dual.truth[i], dual.truth[j]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XiDefinition5Property,
                         ::testing::Values(11, 22, 33, 44));

// --- physical clocks -------------------------------------------------------

TEST(PhysicalClockTest, PerfectClockIsIdentity) {
  PerfectClock c;
  EXPECT_EQ(c.read(SimTime::micros(1234)), SimTime::micros(1234));
  EXPECT_EQ(c.max_offset(), SimTime::zero());
}

TEST(PhysicalClockTest, DriftingClockDrifts) {
  DriftingClock c(SimTime::micros(10), /*drift_ppm=*/100.0);
  // At t = 1s: offset 10us + drift 100us.
  EXPECT_EQ(c.read(SimTime::seconds(1)), SimTime::micros(1000110));
}

TEST(PhysicalClockTest, SyncedClockStaysWithinEpsHalf) {
  const SimTime eps = SimTime::micros(200);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    SyncedClock c(eps, SimTime::millis(10), /*drift_ppm=*/50.0, seed);
    for (std::int64_t t = 0; t < 2000000; t += 1234) {
      const SimTime true_t = SimTime::micros(t);
      const SimTime shown = c.read(true_t);
      const std::int64_t off = (shown - true_t).as_micros();
      EXPECT_LE(std::abs(off), eps.as_micros() / 2)
          << "seed " << seed << " t " << t;
    }
  }
}

TEST(PhysicalClockTest, TwoSyncedClocksWithinEps) {
  const SimTime eps = SimTime::micros(300);
  SyncedClock a(eps, SimTime::millis(5), 20.0, 1);
  SyncedClock b(eps, SimTime::millis(5), 20.0, 2);
  for (std::int64_t t = 0; t < 1000000; t += 777) {
    const std::int64_t diff =
        (a.read(SimTime::micros(t)) - b.read(SimTime::micros(t))).as_micros();
    EXPECT_LE(std::abs(diff), eps.as_micros());
  }
}

TEST(PhysicalClockTest, DefinitelyBefore) {
  const SimTime eps = SimTime::micros(10);
  EXPECT_TRUE(definitely_before(SimTime::micros(0), SimTime::micros(11), eps));
  EXPECT_FALSE(definitely_before(SimTime::micros(0), SimTime::micros(10), eps));
  EXPECT_FALSE(definitely_before(SimTime::micros(0), SimTime::micros(5), eps));
}

}  // namespace
}  // namespace timedc
