// Live introspection: StatsBoard/StatsHub semantics, the AtomicLogHistogram
// quantiles, and the wire-level kStatsRequest/kStatsReply path end to end —
// a poller scraping a live multi-reactor server over a real TCP connection,
// including the reader-computed stall watchdog.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "net/event_loop.hpp"
#include "net/reactor_group.hpp"
#include "net/tcp_transport.hpp"
#include "obs/stats_board.hpp"
#include "protocol/messages.hpp"
#include "protocol/server.hpp"

namespace timedc {
namespace {

TEST(AtomicLogHistogram, EmptyReportsMinusOne) {
  AtomicLogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), -1);
  EXPECT_EQ(h.percentile(0.99), -1);
}

TEST(AtomicLogHistogram, QuantilesAreOrderedAndBounded) {
  AtomicLogHistogram h;
  for (int i = 1; i <= 1000; ++i) h.record(i);
  const std::int64_t p50 = h.percentile(0.50);
  const std::int64_t p95 = h.percentile(0.95);
  const std::int64_t p99 = h.percentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, h.max());
  EXPECT_EQ(h.max(), 1000);
  // Log2 buckets: estimates are coarse but must land within a factor-of-2
  // band of the exact answer.
  EXPECT_GE(p50, 250);
  EXPECT_LE(p50, 1000);
  EXPECT_GE(p99, 500);
}

TEST(AtomicLogHistogram, ZeroAndNegativeLandInBucketZero) {
  AtomicLogHistogram h;
  h.record(0);
  h.record(-5);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.percentile(0.99), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(StatsBoard, CollectEmitsEveryKeyInEnumOrder) {
  StatsBoard board(42);
  std::vector<StatsEntry> out;
  board.collect(/*now_us=*/1000, out);
  ASSERT_EQ(out.size(), kNumStatKeys);
  for (std::size_t i = 0; i < kNumStatKeys; ++i) {
    EXPECT_EQ(out[i].key, i) << "key order";
    EXPECT_NE(to_cstring(static_cast<StatKey>(i)), nullptr);
  }
  EXPECT_EQ(to_cstring(StatKey::kNumStatKeys), nullptr);
}

TEST(StatsBoard, WatchdogAgeIsComputedByTheReader) {
  StatsBoard board(1);
  std::vector<StatsEntry> out;
  // Before the first tick: no last-tick-end, age is unknown (-1).
  board.collect(5000, out);
  const auto find = [&](StatKey k) {
    return out[static_cast<std::size_t>(k)].value;
  };
  EXPECT_EQ(find(StatKey::kLastTickAgeUs), -1);
  EXPECT_EQ(find(StatKey::kEpsUs), -1);
  EXPECT_EQ(find(StatKey::kEffectiveDeltaUs), -1);

  // A reactor that last ticked at t=2000 read at t=9000 is 7000us stalled —
  // computed from the reader's clock, exactly what a wedged loop can no
  // longer refresh.
  board.set(StatKey::kLastTickEndUs, 2000);
  out.clear();
  board.collect(9000, out);
  EXPECT_EQ(find(StatKey::kLastTickAgeUs), 7000);

  // Never negative, even with clock skew between reader and reactor.
  out.clear();
  board.collect(1500, out);
  EXPECT_EQ(find(StatKey::kLastTickAgeUs), 0);
}

TEST(StatsBoard, StageAndStalenessSummariesFlowIntoCollect) {
  StatsBoard board(1);
  for (int i = 0; i < 100; ++i) {
    board.record_stage(Stage::kDecode, 10);
    board.record_staleness(5000);
  }
  std::vector<StatsEntry> out;
  board.collect(0, out);
  const auto find = [&](StatKey k) {
    return out[static_cast<std::size_t>(k)].value;
  };
  EXPECT_GT(find(StatKey::kStageDecodeP50Us), 0);
  EXPECT_EQ(find(StatKey::kStageDecodeMaxUs), 10);
  EXPECT_GT(find(StatKey::kStalenessP99Us), 0);
  EXPECT_EQ(find(StatKey::kStalenessMaxUs), 5000);
  // Untouched stages stay "no data".
  EXPECT_EQ(find(StatKey::kStageApplyMaxUs), -1);
  EXPECT_EQ(find(StatKey::kStageApplyP50Us), -1);
}

TEST(StatsHub, RegistersUpToCapacityAndFindsBySite) {
  StatsHub hub;
  std::vector<std::unique_ptr<StatsBoard>> boards;
  for (std::size_t i = 0; i < StatsHub::kMaxBoards; ++i) {
    boards.push_back(std::make_unique<StatsBoard>(100 + i));
    EXPECT_TRUE(hub.add(boards.back().get()));
  }
  StatsBoard overflow(999);
  EXPECT_FALSE(hub.add(&overflow));
  EXPECT_EQ(hub.size(), StatsHub::kMaxBoards);
  EXPECT_EQ(hub.find(105), boards[5].get());
  EXPECT_EQ(hub.find(999), nullptr);
}

// One connection to ANY reactor scrapes EVERY reactor's board: the serving
// group runs real traffic first so the boards carry nonzero ops, then a
// separate poller transport issues one kStatsRequest for all sites.
TEST(Introspection, WireScrapeOfLiveMultiReactorServer) {
  constexpr std::size_t kReactors = 2;
  constexpr std::uint32_t kSiteBase = 9000;
  constexpr int kOps = 300;

  net::ReactorGroup group(
      kReactors, [](SiteId site) { return site.value % kReactors; });
  group.enable_observability(kSiteBase, /*flight_capacity=*/1u << 10);
  const std::uint16_t port = group.listen_shared(0);

  std::vector<std::unique_ptr<ObjectServer>> servers;
  for (std::size_t r = 0; r < kReactors; ++r) {
    auto server = std::make_unique<ObjectServer>(
        group.transport(r), SiteId{static_cast<std::uint32_t>(r)}, 4,
        PushPolicy::kNone, MessageSizes{});
    server->set_stats_board(group.stats_board(r));
    server->set_flight_recorder(group.flight_recorder(r));
    server->attach();
    servers.push_back(std::move(server));
  }
  group.start();

  // One continuous loop run, phases chained by callbacks: drive fetches at
  // both server sites, then an all-sites scrape, then a targeted scrape.
  net::EventLoop loop;
  net::TcpTransport tx(loop, SimTime::millis(100));
  tx.add_route(SiteId{0}, "127.0.0.1", port);
  tx.add_route(SiteId{1}, "127.0.0.1", port);
  std::map<std::uint32_t, std::map<std::uint16_t, std::int64_t>> scraped;
  std::map<std::uint32_t, std::map<std::uint16_t, std::int64_t>> targeted;
  std::uint64_t reply_seq = 0;
  int replies = 0;
  int scrape_attempts = 0;
  constexpr std::uint64_t kScrapeSeqBase = 4242;
  constexpr std::uint64_t kTargetedSeq = 9999;
  const auto send_all_sites_scrape = [&] {
    wire::StatsRequest rq;
    rq.seq = kScrapeSeqBase + static_cast<std::uint64_t>(scrape_attempts++);
    rq.target_site = wire::kAllSites;
    ASSERT_TRUE(tx.send_stats_request(SiteId{500}, SiteId{0}, rq));
  };
  tx.register_site(SiteId{500}, [&](SiteId, const Message& m) {
    ASSERT_TRUE(std::holds_alternative<FetchReply>(m));
    if (++replies == kOps) send_all_sites_scrape();
  });
  // Boards publish at tick cadence, so a scrape racing the very tick that
  // flushed the last replies may read a board an in-progress tick early;
  // monitors (and this test) re-poll until the counters converge.
  const auto boards_converged = [&] {
    if (scraped.size() != kReactors) return false;
    for (auto& [site, board] : scraped) {
      if (board[static_cast<std::uint16_t>(StatKey::kTicks)] <= 0 ||
          board[static_cast<std::uint16_t>(StatKey::kOpsApplied)] <= 0) {
        return false;
      }
    }
    return true;
  };
  tx.set_stats_reply_handler(
      [&](SiteId, std::uint64_t seq, std::span<const wire::StatsRow> rows) {
        if (seq != kTargetedSeq) {
          reply_seq = seq;
          scraped.clear();
          for (const wire::StatsRow& row : rows) {
            scraped[row.site][row.key] = row.value;
          }
          if (!boards_converged() && scrape_attempts < 500) {
            loop.run_after(SimTime::millis(2),
                           [&] { send_all_sites_scrape(); });
            return;
          }
          wire::StatsRequest rq;
          rq.seq = kTargetedSeq;
          rq.target_site = kSiteBase + 1;
          ASSERT_TRUE(tx.send_stats_request(SiteId{500}, SiteId{1}, rq));
        } else {
          for (const wire::StatsRow& row : rows) {
            targeted[row.site][row.key] = row.value;
          }
          loop.stop();
        }
      });
  loop.post([&] {
    for (int i = 0; i < kOps; ++i) {
      FetchRequest req;
      req.object = ObjectId{static_cast<std::uint32_t>(i % 8)};
      req.reply_to = SiteId{500};
      req.request_id = static_cast<std::uint64_t>(i + 1);
      tx.send_message(SiteId{500},
                      SiteId{static_cast<std::uint32_t>(i % 2)}, Message{req},
                      64);
    }
  });
  loop.run_after(SimTime::seconds(30), [&] { loop.stop(); });  // hang guard
  loop.run();
  ASSERT_EQ(replies, kOps);

  EXPECT_GE(reply_seq, kScrapeSeqBase);
  ASSERT_EQ(scraped.size(), kReactors) << "one board per reactor";
  std::int64_t total_reads = 0;
  for (std::size_t r = 0; r < kReactors; ++r) {
    auto& board = scraped[kSiteBase + static_cast<std::uint32_t>(r)];
    ASSERT_EQ(board.size(), kNumStatKeys);
    const auto val = [&](StatKey k) {
      return board[static_cast<std::uint16_t>(k)];
    };
    EXPECT_GT(val(StatKey::kTicks), 0) << "reactor " << r;
    EXPECT_GT(val(StatKey::kFramesIn), 0) << "reactor " << r;
    EXPECT_GT(val(StatKey::kOpsApplied), 0) << "reactor " << r;
    EXPECT_GE(val(StatKey::kLastTickAgeUs), 0) << "reactor " << r;
    total_reads += val(StatKey::kReadsServed);
    // Staleness percentiles are finite once reads flowed on this reactor.
    if (val(StatKey::kReadsServed) > 0 && val(StatKey::kStalenessMaxUs) >= 0) {
      EXPECT_GE(val(StatKey::kStalenessP50Us), 0);
      EXPECT_LE(val(StatKey::kStalenessP50Us), val(StatKey::kStalenessMaxUs));
    }
  }
  EXPECT_EQ(total_reads, kOps);

  // The targeted scrape (issued from inside the all-sites reply handler)
  // returned exactly one board.
  ASSERT_EQ(targeted.size(), 1u);
  EXPECT_EQ(targeted.begin()->first, kSiteBase + 1);

  // Transport stats are loop-thread-owned; read them only after stop()
  // has joined the reactor threads.
  group.stop();
  EXPECT_GT(group.transport(0).stats().stats_requests_served +
                group.transport(1).stats().stats_requests_served,
            0u);
}

// The local path: a transport that hosts the polled site answers through
// the loop, so timedc-server can self-scrape for --metrics-out dumps.
TEST(Introspection, LocalStatsRequestAnswersFromOwnHub) {
  net::EventLoop loop;
  net::TcpTransport tx(loop);
  StatsBoard board(77);
  StatsHub hub;
  hub.add(&board);
  // No set_stats_board here: the tick hook would republish live transport
  // counters over the values this test plants by hand. The hub alone is
  // what the local answer path consults.
  tx.set_stats_hub(&hub);
  tx.register_site(SiteId{5}, [](SiteId, const Message&) {});
  board.set(StatKey::kOpsApplied, 123);

  std::size_t rows_seen = 0;
  std::int64_t ops = -1;
  tx.set_stats_reply_handler(
      [&](SiteId from, std::uint64_t seq, std::span<const wire::StatsRow> rows) {
        EXPECT_EQ(from, SiteId{5});
        EXPECT_EQ(seq, 9u);
        rows_seen = rows.size();
        for (const wire::StatsRow& r : rows) {
          if (r.key == static_cast<std::uint16_t>(StatKey::kOpsApplied)) {
            ops = r.value;
          }
        }
        loop.stop();
      });
  loop.post([&] {
    wire::StatsRequest rq;
    rq.seq = 9;
    ASSERT_TRUE(tx.send_stats_request(SiteId{5}, SiteId{5}, rq));
  });
  loop.run_after(SimTime::seconds(10), [&] { loop.stop(); });  // hang guard
  loop.run();
  EXPECT_EQ(rows_seen, kNumStatKeys);
  EXPECT_EQ(ops, 123);
}

}  // namespace
}  // namespace timedc
