// Tests for partitioned multi-server deployments (Section 5.1: each object
// has a set of server sites; a contacted server either has the object or
// can obtain it): ownership routing, request forwarding, and correctness of
// both protocol families across servers.
#include <gtest/gtest.h>

#include <memory>

#include "core/causal.hpp"
#include "core/checkers.hpp"
#include "protocol/experiment.hpp"
#include "protocol/timed_causal_cache.hpp"
#include "protocol/timed_serial_cache.hpp"

namespace timedc {
namespace {

SimTime us(std::int64_t n) { return SimTime::micros(n); }
SimTime ms(std::int64_t n) { return SimTime::millis(n); }

/// Two clients, three servers, objects hash-partitioned across servers.
class ClusterFixture : public ::testing::Test {
 protected:
  static constexpr std::size_t kClients = 2;
  static constexpr std::size_t kServers = 3;

  void init(SimTime delta) {
    net_ = std::make_unique<Network>(
        sim_, kClients + kServers, std::make_unique<FixedLatency>(us(10)),
        NetworkConfig{}, Rng(1));
    for (std::size_t k = 0; k < kServers; ++k) {
      cluster_.push_back(SiteId{static_cast<std::uint32_t>(kClients + k)});
    }
    for (SiteId site : cluster_) {
      servers_.push_back(std::make_unique<ObjectServer>(
          sim_, *net_, site, kClients, PushPolicy::kNone, MessageSizes{},
          cluster_));
      servers_.back()->attach();
    }
    for (std::uint32_t c = 0; c < kClients; ++c) {
      clients_.push_back(std::make_unique<TimedSerialCache>(
          sim_, *net_, SiteId{c}, cluster_.front(), &clock_, delta,
          /*mark_old=*/true, MessageSizes{}));
      clients_.back()->attach();
    }
  }

  void route_direct() {
    for (auto& c : clients_) {
      c->set_route([this](ObjectId obj) {
        return cluster_[obj.value % cluster_.size()];
      });
    }
  }

  void route_all_to(std::size_t server_index) {
    for (auto& c : clients_) {
      c->set_route([this, server_index](ObjectId) {
        return cluster_[server_index];
      });
    }
  }

  Value read_now(int c, ObjectId obj) {
    Value got{-1};
    clients_[c]->read(obj, [&](Value v, SimTime) { got = v; });
    sim_.run_until();
    return got;
  }

  void write_now(int c, ObjectId obj, Value v) {
    clients_[c]->write(obj, v, [](SimTime) {});
    sim_.run_until();
  }

  Simulator sim_;
  PerfectClock clock_;
  std::unique_ptr<Network> net_;
  std::vector<SiteId> cluster_;
  std::vector<std::unique_ptr<ObjectServer>> servers_;
  std::vector<std::unique_ptr<TimedSerialCache>> clients_;
};

TEST_F(ClusterFixture, PrimaryOfPartitionsConsistently) {
  init(SimTime::infinity());
  for (std::uint32_t o = 0; o < 12; ++o) {
    const SiteId owner = servers_[0]->primary_of(ObjectId{o});
    for (const auto& s : servers_) {
      EXPECT_EQ(s->primary_of(ObjectId{o}), owner);
    }
    EXPECT_EQ(owner.value, kClients + (o % kServers));
  }
}

TEST_F(ClusterFixture, DirectRoutingNoForwards) {
  init(SimTime::infinity());
  route_direct();
  write_now(0, ObjectId{0}, Value{1});
  write_now(0, ObjectId{1}, Value{2});
  write_now(0, ObjectId{2}, Value{3});
  EXPECT_EQ(read_now(1, ObjectId{0}), Value{1});
  EXPECT_EQ(read_now(1, ObjectId{1}), Value{2});
  EXPECT_EQ(read_now(1, ObjectId{2}), Value{3});
  std::uint64_t forwarded = 0;
  for (const auto& s : servers_) forwarded += s->stats().forwarded;
  EXPECT_EQ(forwarded, 0u);
  // Each server applied exactly the write it owns.
  for (const auto& s : servers_) EXPECT_EQ(s->stats().writes_applied, 1u);
}

TEST_F(ClusterFixture, WrongServerForwardsToOwner) {
  init(SimTime::infinity());
  route_all_to(0);  // server 0 owns only objects ≡ 0 (mod 3)
  write_now(0, ObjectId{1}, Value{7});  // owned by server 1
  EXPECT_EQ(read_now(1, ObjectId{1}), Value{7});
  EXPECT_GE(servers_[0]->stats().forwarded, 2u);  // write + fetch relayed
  EXPECT_EQ(servers_[1]->stats().writes_applied, 1u);
  EXPECT_EQ(servers_[0]->stats().writes_applied, 0u);
}

TEST_F(ClusterFixture, ForwardedReplyComesDirectlyToClient) {
  init(SimTime::infinity());
  route_all_to(2);
  // Fetch an object owned by server 0 through server 2: client->s2->s0->
  // client is 3 hops of 10us; a two-hop return path would make it 4.
  Value got{-1};
  SimTime done = SimTime::zero();
  clients_[0]->read(ObjectId{0}, [&](Value v, SimTime at) {
    got = v;
    done = at;
  });
  sim_.run_until();
  EXPECT_EQ(got, Value{0});
  EXPECT_EQ(done, us(30));
}

TEST_F(ClusterFixture, TscTimelinessAcrossServers) {
  init(ms(1));
  route_direct();
  EXPECT_EQ(read_now(0, ObjectId{1}), Value{0});
  write_now(1, ObjectId{1}, Value{5});
  sim_.schedule_after(ms(3), [] {});
  sim_.run_until();
  EXPECT_EQ(read_now(0, ObjectId{1}), Value{5});
}

// --- experiment-level -------------------------------------------------------

ExperimentConfig cluster_config(ProtocolKind kind, std::size_t servers,
                                Routing routing, std::uint64_t seed) {
  ExperimentConfig config;
  config.kind = kind;
  config.delta = ms(5);
  config.num_servers = servers;
  config.routing = routing;
  config.workload.num_clients = 4;
  config.workload.num_objects = 12;
  config.workload.write_ratio = 0.3;
  config.workload.mean_think_time = ms(4);
  config.workload.horizon = ms(150);
  config.min_latency = us(100);
  config.max_latency = us(400);
  config.seed = seed;
  return config;
}

TEST(ClusterExperimentTest, MultiServerRunsCleanly) {
  const auto r = run_experiment(
      cluster_config(ProtocolKind::kTimedSerial, 3, Routing::kDirect, 11));
  EXPECT_GT(r.operations, 20u);
  EXPECT_EQ(r.server.forwarded, 0u);
  EXPECT_FALSE(r.history.has_thin_air_read());
}

TEST(ClusterExperimentTest, RandomRoutingForwards) {
  const auto r = run_experiment(cluster_config(ProtocolKind::kTimedSerial, 3,
                                               Routing::kViaRandomServer, 11));
  EXPECT_GT(r.server.forwarded, 0u);
}

TEST(ClusterExperimentTest, CausalProtocolSoundAcrossServers) {
  for (const std::uint64_t seed : {21, 22, 23}) {
    const auto r = run_experiment(
        cluster_config(ProtocolKind::kTimedCausal, 3, Routing::kDirect, seed));
    const CausalOrder co = CausalOrder::build(r.history);
    EXPECT_TRUE(passes_cc_fast_checks(r.history, co)) << "seed " << seed;
  }
}

TEST(ClusterExperimentTest, SerialRunsReadOnTimeAcrossServers) {
  for (const std::uint64_t seed : {31, 32, 33}) {
    auto config =
        cluster_config(ProtocolKind::kTimedSerial, 3, Routing::kDirect, seed);
    const auto r = run_experiment(config);
    // Slack: fetch may be forwarded (extra hop) on top of the usual budget.
    const SimTime slack = config.max_latency * 6;
    EXPECT_TRUE(
        reads_on_time(r.history, TimedSpecPerfect{config.delta + slack})
            .all_on_time)
        << "seed " << seed;
  }
}

TEST(ClusterExperimentTest, CrossServerCausalCacheStillUsable) {
  // Regression: without the omega_l = merge(alpha, context) install rule,
  // partitioned servers make every cross-server install look causally stale
  // and every read becomes a refetch. The sound rule revalidates on context
  // growth, so reads are served either locally or by a cheap 304 — almost
  // never by shipping the object again.
  auto config =
      cluster_config(ProtocolKind::kTimedCausal, 3, Routing::kDirect, 41);
  config.delta = SimTime::infinity();
  config.workload.write_ratio = 0.1;
  config.workload.horizon = ms(400);
  config.workload.horizon = ms(1500);  // amortize cold-start misses
  const auto r = run_experiment(config);
  EXPECT_GT(r.cache.hit_ratio(), 0.25);
  const double cheap =
      static_cast<double>(r.cache.cache_hits + r.cache.validations_ok) /
      static_cast<double>(r.cache.reads);
  EXPECT_GT(cheap, 0.7);
  // The [39]-style eviction rule keeps even more reads local.
  config.eviction = CausalEvictionRule::kServerKnowledge;
  const auto r39 = run_experiment(config);
  EXPECT_GE(r39.cache.hit_ratio(), r.cache.hit_ratio());
}

}  // namespace
}  // namespace timedc
