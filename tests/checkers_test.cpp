// Tests for the LIN / SC / CC checkers and the hierarchy properties of
// Figure 4: LIN ⊆ SC ⊆ CC, TSC = T ∩ SC, TCC = T ∩ CC, Delta monotonicity,
// TSC(0) = LIN and TSC(inf) = SC.
#include <gtest/gtest.h>

#include "core/checkers.hpp"
#include "core/history_gen.hpp"
#include "core/serialization.hpp"

namespace timedc {
namespace {

constexpr SiteId kS0{0}, kS1{1}, kS2{2}, kS3{3};
constexpr ObjectId kX{23}, kY{24};
SimTime us(std::int64_t n) { return SimTime::micros(n); }

TEST(CheckLinTest, AcceptsRealTimeLegalHistory) {
  HistoryBuilder b(2);
  b.write(kS0, kX, Value{1}, us(10));
  b.read(kS1, kX, Value{1}, us(20));
  b.write(kS1, kX, Value{2}, us(30));
  b.read(kS0, kX, Value{2}, us(40));
  const auto r = check_lin(b.build());
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.witness.size(), 4u);
}

TEST(CheckLinTest, RejectsStaleReadAfterNewerWrite) {
  HistoryBuilder b(2);
  b.write(kS0, kX, Value{1}, us(10));
  b.write(kS0, kX, Value{2}, us(20));
  b.read(kS1, kX, Value{1}, us(30));  // must return 2 under LIN
  EXPECT_FALSE(check_lin(b.build()).ok());
}

TEST(CheckLinTest, TiesMayReorder) {
  // Write and read at the same effective time: LIN may order the write
  // first, making the read legal.
  HistoryBuilder b(2);
  b.write(kS0, kX, Value{1}, us(10));
  b.read(kS1, kX, Value{1}, us(10));
  EXPECT_TRUE(check_lin(b.build()).ok());
}

TEST(CheckLinTest, RejectsThinAir) {
  HistoryBuilder b(1);
  b.read(kS0, kX, Value{9}, us(10));
  EXPECT_FALSE(check_lin(b.build()).ok());
}

TEST(CheckScTest, AcceptsStoreBufferPatternAsNonSc) {
  // Classic store-buffering: w0(X)1 r0(Y)0 | w1(Y)2 r1(X)0 is NOT SC.
  HistoryBuilder b(2);
  b.write(kS0, kX, Value{1}, us(10));
  b.write(kS1, kY, Value{2}, us(11));
  b.read(kS0, kY, Value{0}, us(20));
  b.read(kS1, kX, Value{0}, us(21));
  EXPECT_FALSE(check_sc(b.build()).ok());
}

TEST(CheckScTest, AcceptsOutOfRealTimeOrder) {
  // Not LIN (stale read) but SC (serialize the reader first).
  HistoryBuilder b(2);
  b.write(kS0, kX, Value{1}, us(10));
  b.write(kS0, kX, Value{2}, us(20));
  b.read(kS1, kX, Value{1}, us(30));
  const History h = b.build();
  EXPECT_FALSE(check_lin(h).ok());
  const auto r = check_sc(h);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(is_legal_serialization(h, r.witness));
  EXPECT_TRUE(respects_program_order(h, r.witness));
}

TEST(CheckScTest, WitnessIsValidSerialization) {
  Rng rng(5);
  ReplicaHistoryParams p;
  p.num_ops = 20;
  p.max_delay_micros = 10;
  for (int round = 0; round < 10; ++round) {
    const History h = replica_history(p, rng);
    const auto r = check_sc(h);
    if (r.ok()) {
      EXPECT_TRUE(is_permutation_of_history(h, r.witness));
      EXPECT_TRUE(is_legal_serialization(h, r.witness));
      EXPECT_TRUE(respects_program_order(h, r.witness));
    }
  }
}

TEST(CheckCcTest, DifferentOrdersOfConcurrentWritesAreCausal) {
  // Two concurrent writes to X observed in opposite orders: CC yes, SC no.
  HistoryBuilder b(4);
  b.write(kS0, kX, Value{1}, us(10));
  b.write(kS1, kX, Value{2}, us(11));
  b.read(kS2, kX, Value{1}, us(20));
  b.read(kS2, kX, Value{2}, us(30));
  b.read(kS3, kX, Value{2}, us(21));
  b.read(kS3, kX, Value{1}, us(31));
  const History h = b.build();
  EXPECT_FALSE(check_sc(h).ok());
  const auto cc = check_cc(h);
  ASSERT_TRUE(cc.ok());
  ASSERT_EQ(cc.per_site_witness.size(), 4u);
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_TRUE(is_legal_serialization(h, cc.per_site_witness[s]));
    EXPECT_TRUE(respects_program_order(h, cc.per_site_witness[s]));
  }
}

TEST(CheckCcTest, RejectsCausalViolation) {
  // w(X)1 -> w(X)2 causally (via a read), but a later read in the chain
  // returns the overwritten value.
  HistoryBuilder b(3);
  b.write(kS0, kX, Value{1}, us(10));
  b.read(kS1, kX, Value{1}, us(20));
  b.write(kS1, kX, Value{2}, us(30));
  b.read(kS2, kX, Value{2}, us(40));
  b.read(kS2, kX, Value{1}, us(50));  // causally stale
  EXPECT_FALSE(check_cc(b.build()).ok());
}

TEST(CheckCcTest, CcWitnessContainsSiteReadsAndAllWrites) {
  HistoryBuilder b(2);
  b.write(kS0, kX, Value{1}, us(10));
  b.read(kS1, kX, Value{1}, us(20));
  b.write(kS1, kY, Value{2}, us(30));
  const History h = b.build();
  const auto cc = check_cc(h);
  ASSERT_TRUE(cc.ok());
  // Site 0: its ops (1 write) + other writes = 2 ops; site 1: 1 read + 2
  // writes = 3 ops.
  EXPECT_EQ(cc.per_site_witness[0].size(), 2u);
  EXPECT_EQ(cc.per_site_witness[1].size(), 3u);
}

// --- Hierarchy properties on generated histories ---------------------------

struct HierarchyCase {
  std::uint64_t seed;
  bool replica;  // replica_history vs random_history
};

class HierarchyProperty
    : public ::testing::TestWithParam<HierarchyCase> {};

TEST_P(HierarchyProperty, ContainmentsAndDecompositions) {
  Rng rng(GetParam().seed);
  History h = [&] {
    if (GetParam().replica) {
      ReplicaHistoryParams p;
      p.num_ops = 18;
      p.num_sites = 3;
      p.num_objects = 2;
      return replica_history(p, rng);
    }
    RandomHistoryParams p;
    p.num_ops = 14;
    p.num_sites = 3;
    p.num_objects = 2;
    return random_history(p, rng);
  }();

  const bool lin = check_lin(h).ok();
  const bool sc = check_sc(h).ok();
  const bool cc = check_cc(h).ok();

  // Figure 4a: LIN ⊆ SC ⊆ CC.
  if (lin) { EXPECT_TRUE(sc) << h.to_string(); }
  if (sc) { EXPECT_TRUE(cc) << h.to_string(); }

  // TSC = T ∩ SC and TCC = T ∩ CC by construction of the checkers; verify
  // the Delta = 0 / Delta = infinity degenerations instead (Figure 4b).
  const TimedSpecEpsilon zero{SimTime::zero(), SimTime::zero()};
  const TimedSpecEpsilon infinite{SimTime::infinity(), SimTime::zero()};
  const auto tsc0 = check_tsc(h, zero);
  const auto tsc_inf = check_tsc(h, infinite);
  EXPECT_EQ(tsc_inf.ok(), sc);   // TSC(inf) == SC
  if (tsc0.ok()) { EXPECT_TRUE(sc); }
  // LIN ⊆ TSC(0) (the paper's "LIN is the Delta = 0 case of TSC"): a legal
  // time-ordered serialization leaves no room for an interfering write
  // strictly between a read's source and the read. The converse does not
  // hold in general (TSC(0) admits reads that return a write from their
  // real-time future, which LIN forbids), so only this inclusion is checked.
  if (lin) { EXPECT_TRUE(tsc0.ok()) << h.to_string(); }

  // Delta monotonicity: on-time at Delta implies on-time at any larger Delta.
  const SimTime d1 = SimTime::micros(40);
  const SimTime d2 = SimTime::micros(200);
  const auto t1 = reads_on_time(h, TimedSpecEpsilon{d1, SimTime::zero()});
  const auto t2 = reads_on_time(h, TimedSpecEpsilon{d2, SimTime::zero()});
  if (t1.all_on_time) { EXPECT_TRUE(t2.all_on_time); }

  // Epsilon monotonicity (Definition 2 weakens with eps): on-time at eps=0
  // implies on-time at any larger eps.
  const auto e0 = reads_on_time(h, TimedSpecEpsilon{d1, SimTime::zero()});
  const auto e1 = reads_on_time(h, TimedSpecEpsilon{d1, SimTime::micros(50)});
  if (e0.all_on_time) { EXPECT_TRUE(e1.all_on_time); }

  // min_timed_delta is exactly the acceptance threshold.
  const SimTime dmin = min_timed_delta(h);
  EXPECT_TRUE(reads_on_time(h, TimedSpecEpsilon{dmin, SimTime::zero()}).all_on_time);
  if (dmin > SimTime::zero()) {
    EXPECT_FALSE(reads_on_time(h, TimedSpecEpsilon{dmin - SimTime::micros(1),
                                                   SimTime::zero()})
                     .all_on_time);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomSeeds, HierarchyProperty,
    ::testing::Values(HierarchyCase{101, false}, HierarchyCase{102, false},
                      HierarchyCase{103, false}, HierarchyCase{104, false},
                      HierarchyCase{105, false}, HierarchyCase{106, false},
                      HierarchyCase{107, false}, HierarchyCase{108, false},
                      HierarchyCase{109, false}, HierarchyCase{110, false},
                      HierarchyCase{201, true}, HierarchyCase{202, true},
                      HierarchyCase{203, true}, HierarchyCase{204, true},
                      HierarchyCase{205, true}, HierarchyCase{206, true},
                      HierarchyCase{207, true}, HierarchyCase{208, true},
                      HierarchyCase{209, true}, HierarchyCase{210, true}));

class CcFastCheckAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CcFastCheckAgreement, ExactImpliesFast) {
  Rng rng(GetParam());
  RandomHistoryParams p;
  p.num_ops = 12;
  p.num_sites = 3;
  const History h = random_history(p, rng);
  const CausalOrder co = CausalOrder::build(h);
  if (check_cc(h).ok()) {
    EXPECT_TRUE(passes_cc_fast_checks(h, co)) << h.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CcFastCheckAgreement,
                         ::testing::Range<std::uint64_t>(300, 360));

TEST(FindSerializationTest, RespectsCustomCausalConstraint) {
  HistoryBuilder b(2);
  b.write(kS0, kX, Value{1}, us(10));
  b.write(kS1, kX, Value{2}, us(20));
  const History h = b.build();
  const CausalOrder co = CausalOrder::build(h);
  std::vector<OpIndex> subset{OpIndex{0}, OpIndex{1}};
  const auto r = find_serialization(h, subset, &co, false, false, {});
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.witness.size(), 2u);
}

TEST(SearchLimitsTest, TinyBudgetReportsLimit) {
  Rng rng(77);
  RandomHistoryParams p;
  p.num_ops = 24;
  p.num_sites = 4;
  const History h = random_history(p, rng);
  SearchLimits limits;
  limits.max_nodes = 1;
  const auto r = check_sc(h, limits);
  EXPECT_NE(r.verdict, Verdict::kYes);
}

}  // namespace
}  // namespace timedc
