// A corpus of classic shared-memory litmus patterns expressed as point
// histories, checked against every model — pinning down exactly where each
// pattern sits in the paper's Figure-4 hierarchy — plus the equivalence of
// the literal Definition-1 serialization predicate with the forced
// reads-from formulation.
#include <gtest/gtest.h>

#include "core/checkers.hpp"
#include "core/history_gen.hpp"
#include "core/serialization.hpp"

namespace timedc {
namespace {

constexpr SiteId kP0{0}, kP1{1}, kP2{2}, kP3{3};
constexpr ObjectId kX{23}, kY{24};
SimTime us(std::int64_t n) { return SimTime::micros(n); }

struct Verdicts {
  bool lin, sc, cc;
};

Verdicts judge(const History& h) {
  return Verdicts{check_lin(h).ok(), check_sc(h).ok(), check_cc(h).ok()};
}

TEST(LitmusTest, StoreBuffering) {
  // SB: w(x)1; r(y)0 || w(y)1; r(x)0 — the TSO hallmark.
  HistoryBuilder b(2);
  b.write(kP0, kX, Value{1}, us(10));
  b.write(kP1, kY, Value{1}, us(11));
  b.read(kP0, kY, Value{0}, us(20));
  b.read(kP1, kX, Value{0}, us(21));
  const auto v = judge(b.build());
  EXPECT_FALSE(v.lin);
  EXPECT_FALSE(v.sc);  // not SC...
  EXPECT_TRUE(v.cc);   // ...but causally consistent (classic result)
}

TEST(LitmusTest, MessagePassing) {
  // MP: w(x)1; w(y)1 || r(y)1; r(x)0 — causality violated.
  HistoryBuilder b(2);
  b.write(kP0, kX, Value{1}, us(10));
  b.write(kP0, kY, Value{1}, us(20));
  b.read(kP1, kY, Value{1}, us(30));
  b.read(kP1, kX, Value{0}, us(40));
  const auto v = judge(b.build());
  EXPECT_FALSE(v.sc);
  EXPECT_FALSE(v.cc);  // w(x)1 -> w(y)1 -> r(y)1 -> r(x) must see x=1
}

TEST(LitmusTest, MessagePassingSatisfied) {
  HistoryBuilder b(2);
  b.write(kP0, kX, Value{1}, us(10));
  b.write(kP0, kY, Value{1}, us(20));
  b.read(kP1, kY, Value{1}, us(30));
  b.read(kP1, kX, Value{1}, us(40));
  const auto v = judge(b.build());
  EXPECT_TRUE(v.lin);
  EXPECT_TRUE(v.sc);
  EXPECT_TRUE(v.cc);
}

TEST(LitmusTest, IndependentReadsIndependentWrites) {
  // IRIW: two readers disagree on the order of two independent writes.
  HistoryBuilder b(4);
  b.write(kP0, kX, Value{1}, us(10));
  b.write(kP1, kY, Value{1}, us(11));
  b.read(kP2, kX, Value{1}, us(20));
  b.read(kP2, kY, Value{0}, us(30));
  b.read(kP3, kY, Value{1}, us(21));
  b.read(kP3, kX, Value{0}, us(31));
  const auto v = judge(b.build());
  EXPECT_FALSE(v.sc);  // no single order of the writes satisfies both
  EXPECT_TRUE(v.cc);   // the writes are concurrent: CC permits it
}

TEST(LitmusTest, CoherenceCoRR) {
  // CoRR violation: one site sees x=2 then x=1 while another sees 1 then 2.
  HistoryBuilder b(4);
  b.write(kP0, kX, Value{1}, us(10));
  b.write(kP1, kX, Value{2}, us(11));
  b.read(kP2, kX, Value{1}, us(20));
  b.read(kP2, kX, Value{2}, us(30));
  b.read(kP3, kX, Value{2}, us(21));
  b.read(kP3, kX, Value{1}, us(31));
  const auto v = judge(b.build());
  EXPECT_FALSE(v.sc);
  EXPECT_TRUE(v.cc);  // per-site orders of concurrent writes may differ
}

TEST(LitmusTest, WriteFollowedByStaleOwnRead) {
  // A site must see its own writes (read-your-writes is implied by all
  // models here because of program order + legality).
  HistoryBuilder b(1);
  b.write(kP0, kX, Value{1}, us(10));
  b.read(kP0, kX, Value{0}, us(20));
  const auto v = judge(b.build());
  EXPECT_FALSE(v.cc);
  EXPECT_FALSE(v.sc);
  EXPECT_FALSE(v.lin);
}

TEST(LitmusTest, Figure4StrictInclusionWitnesses) {
  // One history per gap in LIN ⊂ SC ⊂ CC.
  // In SC \ LIN: a stale read long after a newer write.
  HistoryBuilder sc_not_lin(2);
  sc_not_lin.write(kP0, kX, Value{1}, us(10));
  sc_not_lin.write(kP0, kX, Value{2}, us(20));
  sc_not_lin.read(kP1, kX, Value{1}, us(500));
  const auto a = judge(sc_not_lin.build());
  EXPECT_TRUE(a.sc);
  EXPECT_FALSE(a.lin);
  // In CC \ SC: store buffering (above). In LIN: the MP-satisfied history.
}

// --- literal Definition 1 over serializations ------------------------------

class TimedSerializationEquivalence
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TimedSerializationEquivalence, LegalSerializationAgreesWithForcedForm) {
  Rng rng(GetParam());
  ReplicaHistoryParams p;
  p.num_ops = 16;
  p.num_sites = 3;
  p.num_objects = 2;
  const History h = replica_history(p, rng);
  const auto sc = check_sc(h);
  if (!sc.ok()) return;  // need a legal program-order serialization
  for (const std::int64_t delta_us : {0, 20, 60, 200}) {
    const TimedSpecEpsilon spec{us(delta_us), SimTime::zero()};
    EXPECT_EQ(is_timed_serialization(h, sc.witness, spec),
              reads_on_time(h, spec).all_on_time)
        << "delta " << delta_us;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimedSerializationEquivalence,
                         ::testing::Range<std::uint64_t>(900, 950));

TEST(TimedSerializationTest, IllegalSerializationStillMeaningful) {
  // Definition 1 is stated over any serialization; with the write placed
  // after the read, the read's source is "no preceding write" and the old
  // write interferes once Delta elapses.
  HistoryBuilder b(2);
  b.write(kP0, kX, Value{1}, us(10));
  b.read(kP1, kX, Value{1}, us(500));
  const History h = b.build();
  const std::vector<OpIndex> reversed{OpIndex{1}, OpIndex{0}};
  EXPECT_FALSE(is_timed_serialization(
      h, reversed, TimedSpecEpsilon{us(100), SimTime::zero()}));
  EXPECT_TRUE(is_timed_serialization(
      h, reversed, TimedSpecEpsilon{us(1000), SimTime::zero()}));
}

}  // namespace
}  // namespace timedc
