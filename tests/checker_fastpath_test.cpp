// Equivalence of the checker fast paths (prefilters, forced-order
// constraint graph, seed-order pass, packed memo key) with the plain
// exhaustive engine, and of the sorted-scan timed check with the naive
// O(R x W) reference — property-tested over generated histories of both
// families. Verdicts must match exactly; witnesses may differ.
#include <gtest/gtest.h>

#include "clocks/physical_clock.hpp"
#include "core/checkers.hpp"
#include "core/history_gen.hpp"
#include "core/timed.hpp"

namespace timedc {
namespace {

History generate(std::uint64_t seed, int i) {
  Rng rng = Rng::stream(seed, static_cast<std::uint64_t>(i));
  switch (i % 4) {
    case 0: {
      RandomHistoryParams p;
      p.num_ops = 12;
      p.num_sites = 3;
      p.num_objects = 2;
      return random_history(p, rng);
    }
    case 1: {
      ReplicaHistoryParams p;
      p.num_ops = 16;
      p.num_sites = 3;
      p.num_objects = 2;
      p.max_delay_micros = 120;
      return replica_history(p, rng);
    }
    case 2: {
      // More sites/objects, higher write ratio: exercises the constraint
      // graph harder (more forced edges, more inconsistent histories).
      RandomHistoryParams p;
      p.num_ops = 14;
      p.num_sites = 4;
      p.num_objects = 3;
      p.write_ratio = 0.6;
      return random_history(p, rng);
    }
    default: {
      ReplicaHistoryParams p;
      p.num_ops = 20;
      p.num_sites = 4;
      p.num_objects = 3;
      p.max_delay_micros = 400;
      return replica_history(p, rng);
    }
  }
}

TEST(CheckerFastPathTest, VerdictsMatchExhaustiveOn600Histories) {
  SearchLimits fast, exhaustive;
  fast.fast_paths = true;
  exhaustive.fast_paths = false;
  for (int i = 0; i < 600; ++i) {
    const History h = generate(20250805, i);
    const auto lin_f = check_lin(h, fast);
    const auto lin_e = check_lin(h, exhaustive);
    EXPECT_EQ(lin_f.verdict, lin_e.verdict) << "lin mismatch at i=" << i << "\n"
                                            << h.to_string();
    const auto sc_f = check_sc(h, fast);
    const auto sc_e = check_sc(h, exhaustive);
    EXPECT_EQ(sc_f.verdict, sc_e.verdict) << "sc mismatch at i=" << i << "\n"
                                          << h.to_string();
    const auto cc_f = check_cc(h, fast);
    const auto cc_e = check_cc(h, exhaustive);
    EXPECT_EQ(cc_f.verdict, cc_e.verdict) << "cc mismatch at i=" << i << "\n"
                                          << h.to_string();
    // Fast-path witnesses must still be real witnesses: legal and
    // constraint-respecting serializations are re-checkable via the
    // serialization validator used elsewhere; here we at least require a
    // full-length permutation.
    if (sc_f.ok()) EXPECT_EQ(sc_f.witness.size(), h.size());
    if (lin_f.ok()) EXPECT_EQ(lin_f.witness.size(), h.size());
  }
}

/// The pre-optimization Def 2 scan, kept as the test oracle.
TimedCheckResult naive_reads_on_time(const History& h, const TimedSpecEpsilon& spec) {
  TimedCheckResult result;
  for (const Operation& r : h.operations()) {
    if (!r.is_read()) continue;
    const auto src = h.forced_source(r.index);
    std::vector<OpIndex> w_r;
    for (OpIndex w2 : h.writes_to(r.object)) {
      if (src && w2 == *src) continue;
      const bool newer =
          !src || definitely_before(h.op(*src).time, h.op(w2).time, spec.eps);
      const bool stale =
          definitely_before(h.op(w2).time, r.time - spec.delta, spec.eps);
      if (newer && stale) w_r.push_back(w2);
    }
    if (!w_r.empty()) {
      result.all_on_time = false;
      result.late_reads.push_back(LateRead{r.index, src, std::move(w_r)});
    }
  }
  return result;
}

TEST(TimedFastPathTest, SortedScanMatchesNaiveIncludingWrContents) {
  const std::int64_t deltas[] = {0, 10, 40, 120, 640, -1};
  const std::int64_t epss[] = {0, 15, 60};
  for (int i = 0; i < 200; ++i) {
    const History h = generate(424242, i);
    for (const std::int64_t d : deltas) {
      for (const std::int64_t e : epss) {
        const TimedSpecEpsilon spec{
            d < 0 ? SimTime::infinity() : SimTime::micros(d), SimTime::micros(e)};
        const auto fast = reads_on_time(h, spec);
        const auto naive = naive_reads_on_time(h, spec);
        ASSERT_EQ(fast.all_on_time, naive.all_on_time)
            << "i=" << i << " delta=" << d << " eps=" << e;
        ASSERT_EQ(fast.late_reads.size(), naive.late_reads.size());
        for (std::size_t k = 0; k < fast.late_reads.size(); ++k) {
          EXPECT_EQ(fast.late_reads[k].read, naive.late_reads[k].read);
          EXPECT_EQ(fast.late_reads[k].source, naive.late_reads[k].source);
          EXPECT_EQ(fast.late_reads[k].w_r, naive.late_reads[k].w_r)
              << "W_r mismatch i=" << i << " delta=" << d << " eps=" << e;
        }
      }
    }
  }
}

TEST(TimedFastPathTest, LargeHistorySpotCheck) {
  Rng rng(2718);
  ReplicaHistoryParams p;
  p.num_ops = 400;
  p.num_sites = 6;
  p.num_objects = 8;
  p.max_delay_micros = 900;
  const History h = replica_history(p, rng);
  for (const std::int64_t d : {0, 100, 1000, 5000}) {
    const TimedSpecEpsilon spec{SimTime::micros(d), SimTime::micros(50)};
    const auto fast = reads_on_time(h, spec);
    const auto naive = naive_reads_on_time(h, spec);
    ASSERT_EQ(fast.late_reads.size(), naive.late_reads.size());
    for (std::size_t k = 0; k < fast.late_reads.size(); ++k) {
      ASSERT_EQ(fast.late_reads[k].w_r, naive.late_reads[k].w_r);
    }
  }
}

TEST(CheckerFastPathTest, NodesAreCountedAndPruned) {
  // On a mixed batch the pruned engine must expand no more nodes than the
  // exhaustive one in total (that is the point of the constraint graph).
  SearchLimits fast, exhaustive;
  fast.fast_paths = true;
  exhaustive.fast_paths = false;
  std::uint64_t fast_nodes = 0, exhaustive_nodes = 0;
  for (int i = 0; i < 200; ++i) {
    const History h = generate(31337, i);
    fast_nodes += check_sc(h, fast).nodes;
    exhaustive_nodes += check_sc(h, exhaustive).nodes;
  }
  EXPECT_LT(fast_nodes, exhaustive_nodes);
}

}  // namespace
}  // namespace timedc
