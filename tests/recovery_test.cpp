// Crash-recovery building blocks of ObjectServer: the write log fires for
// every write decision (accepted and LWW-rejected), a fresh server replaying
// it reconstructs values, versions, the version counter AND the write-dedup
// acks (a client whose ack died with the old process gets the same answer on
// retransmit), arm_restart_grace defers writes for one lease window after a
// restart, and begin_drain releases outstanding leases so shutdown cannot
// wedge behind them.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "clocks/physical_clock.hpp"
#include "protocol/server.hpp"
#include "protocol/timed_serial_cache.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace timedc {
namespace {

SimTime us(std::int64_t n) { return SimTime::micros(n); }
SimTime ms(std::int64_t n) { return SimTime::millis(n); }

struct LoggedWrite {
  WriteRequest request;
  std::uint64_t version = 0;
};

/// A sim cell: one server at site 2, raw client messages from sites 0/1.
struct Cell {
  explicit Cell(ServerConfig config = {}) {
    net = std::make_unique<Network>(sim, 3,
                                    std::make_unique<FixedLatency>(us(10)),
                                    NetworkConfig{}, Rng(1));
    server = std::make_unique<ObjectServer>(sim, *net, SiteId{2}, 3,
                                            PushPolicy::kNone, MessageSizes{},
                                            std::vector<SiteId>{}, config);
  }

  void capture_replies(std::uint32_t site, std::vector<Message>& into) {
    net->register_site(SiteId{site},
                       [&into](SiteId, const Message& m) { into.push_back(m); });
  }

  void send_write(std::uint32_t site, ObjectId object, Value value,
                  SimTime client_time, std::uint64_t request_id) {
    net->send_message(
        SiteId{site}, SiteId{2},
        Message{WriteRequest{object, value, client_time, {}, SiteId{site},
                             request_id}},
        64);
    sim.run_until();
  }

  Simulator sim;
  std::unique_ptr<Network> net;
  std::unique_ptr<ObjectServer> server;
};

TEST(Recovery, WriteLogReplayRestoresValuesVersionsAndDedupAcks) {
  std::vector<LoggedWrite> wal;
  std::vector<Message> acks;
  {
    Cell before;
    before.server->set_write_log(
        [&wal](const WriteRequest& req, std::uint64_t version) {
          wal.push_back(LoggedWrite{req, version});
        });
    before.server->attach();
    before.capture_replies(0, acks);
    std::vector<Message> site1_acks;
    before.capture_replies(1, site1_acks);
    before.send_write(0, ObjectId{7}, Value{111}, us(100), 1);
    before.send_write(0, ObjectId{7}, Value{222}, us(200), 2);
    // An LWW loser (alpha before the stored 200us): logged with version 0,
    // because its dedup ack must also survive a crash.
    before.send_write(0, ObjectId{7}, Value{333}, us(150), 3);
    before.send_write(1, ObjectId{8}, Value{444}, us(300), 1);
    ASSERT_EQ(wal.size(), 4u);
    EXPECT_EQ(wal[1].version, 2u);
    EXPECT_EQ(wal[2].version, 0u);  // the rejected write
    ASSERT_EQ(acks.size(), 3u);
  }

  // "Restart": a brand-new server replays the log in order before attach.
  Cell after;
  for (const LoggedWrite& w : wal) {
    after.server->restore_write(w.request, w.version);
  }
  after.server->attach();
  EXPECT_EQ(after.server->stats().writes_restored, 4u);

  // The restored state serves reads with the pre-crash value and version.
  std::vector<Message> replies;
  after.capture_replies(1, replies);
  after.net->send_message(SiteId{1}, SiteId{2},
                          Message{FetchRequest{ObjectId{7}, SiteId{1}, 2}}, 64);
  after.sim.run_until();
  ASSERT_EQ(replies.size(), 1u);
  const auto* fetched = std::get_if<FetchReply>(&replies[0]);
  ASSERT_NE(fetched, nullptr);
  EXPECT_EQ(fetched->copy.value, Value{222});
  EXPECT_EQ(fetched->copy.version, 2u);

  // A client that never saw its ack retransmits: the rebuilt dedup slot
  // re-acks without applying the write again.
  std::vector<Message> retrans_acks;
  after.capture_replies(0, retrans_acks);
  after.send_write(0, ObjectId{7}, Value{333}, us(150), 3);
  EXPECT_EQ(after.server->stats().duplicate_writes, 1u);
  EXPECT_EQ(after.server->stats().writes_applied, 0u);
  ASSERT_EQ(retrans_acks.size(), 1u);
  const auto* re_ack = std::get_if<WriteAck>(&retrans_acks[0]);
  ASSERT_NE(re_ack, nullptr);
  EXPECT_EQ(re_ack->request_id, 3u);
  EXPECT_EQ(re_ack->version, 0u);  // same verdict as before the crash

  // The restored version counter continues, it does not restart at 1.
  retrans_acks.clear();
  after.send_write(0, ObjectId{7}, Value{555}, us(400), 4);
  ASSERT_EQ(retrans_acks.size(), 1u);
  const auto* new_ack = std::get_if<WriteAck>(&retrans_acks[0]);
  ASSERT_NE(new_ack, nullptr);
  EXPECT_EQ(new_ack->version, 3u);
}

TEST(Recovery, RestartGraceDefersWritesForOneLeaseWindow) {
  Cell cell(ServerConfig{ms(20)});
  cell.server->arm_restart_grace();
  cell.server->attach();
  std::vector<Message> acks;
  cell.capture_replies(0, acks);

  // The restarted server cannot know which leases died with the old
  // process; for one lease window every write defers, as if all of them
  // were still live (Gray-Cheriton restart rule).
  const SimTime t0 = cell.sim.now();
  cell.net->send_message(
      SiteId{0}, SiteId{2},
      Message{WriteRequest{ObjectId{1}, Value{9}, us(50), {}, SiteId{0}, 1}},
      64);
  cell.sim.run_until();
  EXPECT_EQ(cell.server->stats().writes_deferred, 1u);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_GE(cell.sim.now() - t0, ms(20));
}

TEST(Recovery, BeginDrainReleasesLeasesSoWritesApplyImmediately) {
  // A TSC client takes a 50ms lease; after begin_drain a conflicting write
  // applies at once instead of waiting out the lease.
  Simulator sim;
  Network net(sim, 3, std::make_unique<FixedLatency>(us(10)), NetworkConfig{},
              Rng(1));
  ObjectServer server(sim, net, SiteId{2}, 2, PushPolicy::kNone,
                      MessageSizes{}, std::vector<SiteId>{},
                      ServerConfig{ms(50)});
  server.attach();
  PerfectClock clock;
  TimedSerialCache reader(sim, net, SiteId{0}, SiteId{2}, &clock, ms(1),
                          /*mark_old=*/true, MessageSizes{});
  reader.attach();
  TimedSerialCache writer(sim, net, SiteId{1}, SiteId{2}, &clock, ms(1),
                          /*mark_old=*/true, MessageSizes{});
  writer.attach();

  Value got{-1};
  reader.read(ObjectId{0}, [&](Value v, SimTime) { got = v; });
  sim.run_until();
  ASSERT_EQ(got, Value{0});  // the read took a 50ms lease on object 0

  server.begin_drain();
  EXPECT_EQ(server.stats().drains, 1u);

  const SimTime t0 = sim.now();
  SimTime completed = SimTime::zero();
  writer.write(ObjectId{0}, Value{1}, [&](SimTime at) { completed = at; });
  sim.run_until();
  ASSERT_NE(completed, SimTime::zero());
  // Without the drain this write would defer ~50ms behind the lease; with
  // it the only cost is the round trip.
  EXPECT_LT(completed - t0, ms(5));
  EXPECT_EQ(server.stats().writes_deferred, 0u);
  EXPECT_EQ(server.stats().writes_applied, 1u);
}

TEST(Recovery, ForwardedWriteIsExactlyOnceAcrossOwnerRestart) {
  // Cluster topology: client 0, entry server A (site 2), owner B (site 3).
  // Ownership pins every object on B, so a write sent to A always crosses
  // one forward hop — carrying the ORIGINAL (client, request_id) — before
  // it reaches B's WAL. B then dies with the ack possibly unflushed; the
  // restarted B must re-ack the retransmission (which again arrives via A)
  // from its rebuilt dedup table without applying twice, while genuinely
  // new writes still sit out the restart grace window.
  const auto owner_b = [](ObjectId) { return SiteId{3}; };
  std::vector<LoggedWrite> wal;
  {
    Simulator sim;
    Network net(sim, 4, std::make_unique<FixedLatency>(us(10)),
                NetworkConfig{}, Rng(1));
    ObjectServer a(sim, net, SiteId{2}, 4, PushPolicy::kNone, MessageSizes{},
                   std::vector<SiteId>{}, ServerConfig{});
    ObjectServer b(sim, net, SiteId{3}, 4, PushPolicy::kNone, MessageSizes{},
                   std::vector<SiteId>{}, ServerConfig{});
    a.set_ownership(owner_b);
    b.set_ownership(owner_b);
    b.set_write_log([&wal](const WriteRequest& req, std::uint64_t version) {
      wal.push_back(LoggedWrite{req, version});
    });
    a.attach();
    b.attach();
    std::vector<Message> acks;
    net.register_site(SiteId{0},
                      [&acks](SiteId, const Message& m) { acks.push_back(m); });
    net.send_message(SiteId{0}, SiteId{2},
                     Message{WriteRequest{ObjectId{5}, Value{77}, us(100), {},
                                          SiteId{0}, 1}},
                     64);
    sim.run_until();
    EXPECT_EQ(a.stats().forwarded, 1u);
    EXPECT_EQ(a.stats().writes_applied, 0u);
    EXPECT_EQ(b.stats().writes_applied, 1u);
    ASSERT_EQ(wal.size(), 1u);
    // The WAL entry carries the CLIENT's identity, not the forwarder's —
    // that is what makes dedup survive the hop.
    EXPECT_EQ(wal[0].request.reply_to, SiteId{0});
    EXPECT_EQ(wal[0].request.request_id, 1u);
    ASSERT_EQ(acks.size(), 1u);  // ...and the ack went straight to 0
  }

  // Restart: a fresh owner replays the WAL and arms its grace window; the
  // entry server also comes back cold (it holds no durable state).
  Simulator sim;
  Network net(sim, 4, std::make_unique<FixedLatency>(us(10)), NetworkConfig{},
              Rng(2));
  ObjectServer a(sim, net, SiteId{2}, 4, PushPolicy::kNone, MessageSizes{},
                 std::vector<SiteId>{}, ServerConfig{});
  ObjectServer b(sim, net, SiteId{3}, 4, PushPolicy::kNone, MessageSizes{},
                 std::vector<SiteId>{}, ServerConfig{ms(20)});
  a.set_ownership(owner_b);
  b.set_ownership(owner_b);
  for (const LoggedWrite& w : wal) b.restore_write(w.request, w.version);
  b.arm_restart_grace();
  a.attach();
  b.attach();
  std::vector<Message> acks;
  net.register_site(SiteId{0},
                    [&acks](SiteId, const Message& m) { acks.push_back(m); });

  // The client never saw its ack die, so it retransmits the SAME request
  // through the entry server. One hop later, B's rebuilt dedup slot
  // re-acks with the pre-crash version — immediately, not grace-deferred:
  // answering a completed write reveals nothing about dead leases.
  const SimTime t0 = sim.now();
  net.send_message(SiteId{0}, SiteId{2},
                   Message{WriteRequest{ObjectId{5}, Value{77}, us(100), {},
                                        SiteId{0}, 1}},
                   64);
  sim.run_until();
  EXPECT_EQ(a.stats().forwarded, 1u);
  EXPECT_EQ(b.stats().duplicate_writes, 1u);
  EXPECT_EQ(b.stats().writes_applied, 0u);
  ASSERT_EQ(acks.size(), 1u);
  const auto* re_ack = std::get_if<WriteAck>(&acks[0]);
  ASSERT_NE(re_ack, nullptr);
  EXPECT_EQ(re_ack->request_id, 1u);
  EXPECT_EQ(re_ack->version, wal[0].version);
  EXPECT_LT(sim.now() - t0, ms(5));

  // A genuinely NEW forwarded write still waits out the restart grace:
  // the hop does not launder it past the Gray-Cheriton restart rule.
  acks.clear();
  net.send_message(SiteId{0}, SiteId{2},
                   Message{WriteRequest{ObjectId{5}, Value{88}, us(200), {},
                                        SiteId{0}, 2}},
                   64);
  sim.run_until();
  EXPECT_EQ(b.stats().writes_deferred, 1u);
  EXPECT_EQ(b.stats().writes_applied, 1u);
  ASSERT_EQ(acks.size(), 1u);
  // The grace window runs from arm_restart_grace (sim time zero), so the
  // deferred write cannot complete before one full window has elapsed.
  EXPECT_GE(sim.now(), ms(20));
}

}  // namespace
}  // namespace timedc
