// Crash-recovery building blocks of ObjectServer: the write log fires for
// every write decision (accepted and LWW-rejected), a fresh server replaying
// it reconstructs values, versions, the version counter AND the write-dedup
// acks (a client whose ack died with the old process gets the same answer on
// retransmit), arm_restart_grace defers writes for one lease window after a
// restart, and begin_drain releases outstanding leases so shutdown cannot
// wedge behind them.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "clocks/physical_clock.hpp"
#include "protocol/server.hpp"
#include "protocol/timed_serial_cache.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace timedc {
namespace {

SimTime us(std::int64_t n) { return SimTime::micros(n); }
SimTime ms(std::int64_t n) { return SimTime::millis(n); }

struct LoggedWrite {
  WriteRequest request;
  std::uint64_t version = 0;
};

/// A sim cell: one server at site 2, raw client messages from sites 0/1.
struct Cell {
  explicit Cell(ServerConfig config = {}) {
    net = std::make_unique<Network>(sim, 3,
                                    std::make_unique<FixedLatency>(us(10)),
                                    NetworkConfig{}, Rng(1));
    server = std::make_unique<ObjectServer>(sim, *net, SiteId{2}, 3,
                                            PushPolicy::kNone, MessageSizes{},
                                            std::vector<SiteId>{}, config);
  }

  void capture_replies(std::uint32_t site, std::vector<Message>& into) {
    net->register_site(SiteId{site},
                       [&into](SiteId, const Message& m) { into.push_back(m); });
  }

  void send_write(std::uint32_t site, ObjectId object, Value value,
                  SimTime client_time, std::uint64_t request_id) {
    net->send_message(
        SiteId{site}, SiteId{2},
        Message{WriteRequest{object, value, client_time, {}, SiteId{site},
                             request_id}},
        64);
    sim.run_until();
  }

  Simulator sim;
  std::unique_ptr<Network> net;
  std::unique_ptr<ObjectServer> server;
};

TEST(Recovery, WriteLogReplayRestoresValuesVersionsAndDedupAcks) {
  std::vector<LoggedWrite> wal;
  std::vector<Message> acks;
  {
    Cell before;
    before.server->set_write_log(
        [&wal](const WriteRequest& req, std::uint64_t version) {
          wal.push_back(LoggedWrite{req, version});
        });
    before.server->attach();
    before.capture_replies(0, acks);
    std::vector<Message> site1_acks;
    before.capture_replies(1, site1_acks);
    before.send_write(0, ObjectId{7}, Value{111}, us(100), 1);
    before.send_write(0, ObjectId{7}, Value{222}, us(200), 2);
    // An LWW loser (alpha before the stored 200us): logged with version 0,
    // because its dedup ack must also survive a crash.
    before.send_write(0, ObjectId{7}, Value{333}, us(150), 3);
    before.send_write(1, ObjectId{8}, Value{444}, us(300), 1);
    ASSERT_EQ(wal.size(), 4u);
    EXPECT_EQ(wal[1].version, 2u);
    EXPECT_EQ(wal[2].version, 0u);  // the rejected write
    ASSERT_EQ(acks.size(), 3u);
  }

  // "Restart": a brand-new server replays the log in order before attach.
  Cell after;
  for (const LoggedWrite& w : wal) {
    after.server->restore_write(w.request, w.version);
  }
  after.server->attach();
  EXPECT_EQ(after.server->stats().writes_restored, 4u);

  // The restored state serves reads with the pre-crash value and version.
  std::vector<Message> replies;
  after.capture_replies(1, replies);
  after.net->send_message(SiteId{1}, SiteId{2},
                          Message{FetchRequest{ObjectId{7}, SiteId{1}, 2}}, 64);
  after.sim.run_until();
  ASSERT_EQ(replies.size(), 1u);
  const auto* fetched = std::get_if<FetchReply>(&replies[0]);
  ASSERT_NE(fetched, nullptr);
  EXPECT_EQ(fetched->copy.value, Value{222});
  EXPECT_EQ(fetched->copy.version, 2u);

  // A client that never saw its ack retransmits: the rebuilt dedup slot
  // re-acks without applying the write again.
  std::vector<Message> retrans_acks;
  after.capture_replies(0, retrans_acks);
  after.send_write(0, ObjectId{7}, Value{333}, us(150), 3);
  EXPECT_EQ(after.server->stats().duplicate_writes, 1u);
  EXPECT_EQ(after.server->stats().writes_applied, 0u);
  ASSERT_EQ(retrans_acks.size(), 1u);
  const auto* re_ack = std::get_if<WriteAck>(&retrans_acks[0]);
  ASSERT_NE(re_ack, nullptr);
  EXPECT_EQ(re_ack->request_id, 3u);
  EXPECT_EQ(re_ack->version, 0u);  // same verdict as before the crash

  // The restored version counter continues, it does not restart at 1.
  retrans_acks.clear();
  after.send_write(0, ObjectId{7}, Value{555}, us(400), 4);
  ASSERT_EQ(retrans_acks.size(), 1u);
  const auto* new_ack = std::get_if<WriteAck>(&retrans_acks[0]);
  ASSERT_NE(new_ack, nullptr);
  EXPECT_EQ(new_ack->version, 3u);
}

TEST(Recovery, RestartGraceDefersWritesForOneLeaseWindow) {
  Cell cell(ServerConfig{ms(20)});
  cell.server->arm_restart_grace();
  cell.server->attach();
  std::vector<Message> acks;
  cell.capture_replies(0, acks);

  // The restarted server cannot know which leases died with the old
  // process; for one lease window every write defers, as if all of them
  // were still live (Gray-Cheriton restart rule).
  const SimTime t0 = cell.sim.now();
  cell.net->send_message(
      SiteId{0}, SiteId{2},
      Message{WriteRequest{ObjectId{1}, Value{9}, us(50), {}, SiteId{0}, 1}},
      64);
  cell.sim.run_until();
  EXPECT_EQ(cell.server->stats().writes_deferred, 1u);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_GE(cell.sim.now() - t0, ms(20));
}

TEST(Recovery, BeginDrainReleasesLeasesSoWritesApplyImmediately) {
  // A TSC client takes a 50ms lease; after begin_drain a conflicting write
  // applies at once instead of waiting out the lease.
  Simulator sim;
  Network net(sim, 3, std::make_unique<FixedLatency>(us(10)), NetworkConfig{},
              Rng(1));
  ObjectServer server(sim, net, SiteId{2}, 2, PushPolicy::kNone,
                      MessageSizes{}, std::vector<SiteId>{},
                      ServerConfig{ms(50)});
  server.attach();
  PerfectClock clock;
  TimedSerialCache reader(sim, net, SiteId{0}, SiteId{2}, &clock, ms(1),
                          /*mark_old=*/true, MessageSizes{});
  reader.attach();
  TimedSerialCache writer(sim, net, SiteId{1}, SiteId{2}, &clock, ms(1),
                          /*mark_old=*/true, MessageSizes{});
  writer.attach();

  Value got{-1};
  reader.read(ObjectId{0}, [&](Value v, SimTime) { got = v; });
  sim.run_until();
  ASSERT_EQ(got, Value{0});  // the read took a 50ms lease on object 0

  server.begin_drain();
  EXPECT_EQ(server.stats().drains, 1u);

  const SimTime t0 = sim.now();
  SimTime completed = SimTime::zero();
  writer.write(ObjectId{0}, Value{1}, [&](SimTime at) { completed = at; });
  sim.run_until();
  ASSERT_NE(completed, SimTime::zero());
  // Without the drain this write would defer ~50ms behind the lease; with
  // it the only cost is the round trip.
  EXPECT_LT(completed - t0, ms(5));
  EXPECT_EQ(server.stats().writes_deferred, 0u);
  EXPECT_EQ(server.stats().writes_applied, 1u);
}

TEST(Recovery, ForwardedWriteIsExactlyOnceAcrossOwnerRestart) {
  // Cluster topology: client 0, entry server A (site 2), owner B (site 3).
  // Ownership pins every object on B, so a write sent to A always crosses
  // one forward hop — carrying the ORIGINAL (client, request_id) — before
  // it reaches B's WAL. B then dies with the ack possibly unflushed; the
  // restarted B must re-ack the retransmission (which again arrives via A)
  // from its rebuilt dedup table without applying twice, while genuinely
  // new writes still sit out the restart grace window.
  const auto owner_b = [](ObjectId) { return SiteId{3}; };
  std::vector<LoggedWrite> wal;
  {
    Simulator sim;
    Network net(sim, 4, std::make_unique<FixedLatency>(us(10)),
                NetworkConfig{}, Rng(1));
    ObjectServer a(sim, net, SiteId{2}, 4, PushPolicy::kNone, MessageSizes{},
                   std::vector<SiteId>{}, ServerConfig{});
    ObjectServer b(sim, net, SiteId{3}, 4, PushPolicy::kNone, MessageSizes{},
                   std::vector<SiteId>{}, ServerConfig{});
    a.set_ownership(owner_b);
    b.set_ownership(owner_b);
    b.set_write_log([&wal](const WriteRequest& req, std::uint64_t version) {
      wal.push_back(LoggedWrite{req, version});
    });
    a.attach();
    b.attach();
    std::vector<Message> acks;
    net.register_site(SiteId{0},
                      [&acks](SiteId, const Message& m) { acks.push_back(m); });
    net.send_message(SiteId{0}, SiteId{2},
                     Message{WriteRequest{ObjectId{5}, Value{77}, us(100), {},
                                          SiteId{0}, 1}},
                     64);
    sim.run_until();
    EXPECT_EQ(a.stats().forwarded, 1u);
    EXPECT_EQ(a.stats().writes_applied, 0u);
    EXPECT_EQ(b.stats().writes_applied, 1u);
    ASSERT_EQ(wal.size(), 1u);
    // The WAL entry carries the CLIENT's identity, not the forwarder's —
    // that is what makes dedup survive the hop.
    EXPECT_EQ(wal[0].request.reply_to, SiteId{0});
    EXPECT_EQ(wal[0].request.request_id, 1u);
    ASSERT_EQ(acks.size(), 1u);  // ...and the ack went straight to 0
  }

  // Restart: a fresh owner replays the WAL and arms its grace window; the
  // entry server also comes back cold (it holds no durable state).
  Simulator sim;
  Network net(sim, 4, std::make_unique<FixedLatency>(us(10)), NetworkConfig{},
              Rng(2));
  ObjectServer a(sim, net, SiteId{2}, 4, PushPolicy::kNone, MessageSizes{},
                 std::vector<SiteId>{}, ServerConfig{});
  ObjectServer b(sim, net, SiteId{3}, 4, PushPolicy::kNone, MessageSizes{},
                 std::vector<SiteId>{}, ServerConfig{ms(20)});
  a.set_ownership(owner_b);
  b.set_ownership(owner_b);
  for (const LoggedWrite& w : wal) b.restore_write(w.request, w.version);
  b.arm_restart_grace();
  a.attach();
  b.attach();
  std::vector<Message> acks;
  net.register_site(SiteId{0},
                    [&acks](SiteId, const Message& m) { acks.push_back(m); });

  // The client never saw its ack die, so it retransmits the SAME request
  // through the entry server. One hop later, B's rebuilt dedup slot
  // re-acks with the pre-crash version — immediately, not grace-deferred:
  // answering a completed write reveals nothing about dead leases.
  const SimTime t0 = sim.now();
  net.send_message(SiteId{0}, SiteId{2},
                   Message{WriteRequest{ObjectId{5}, Value{77}, us(100), {},
                                        SiteId{0}, 1}},
                   64);
  sim.run_until();
  EXPECT_EQ(a.stats().forwarded, 1u);
  EXPECT_EQ(b.stats().duplicate_writes, 1u);
  EXPECT_EQ(b.stats().writes_applied, 0u);
  ASSERT_EQ(acks.size(), 1u);
  const auto* re_ack = std::get_if<WriteAck>(&acks[0]);
  ASSERT_NE(re_ack, nullptr);
  EXPECT_EQ(re_ack->request_id, 1u);
  EXPECT_EQ(re_ack->version, wal[0].version);
  EXPECT_LT(sim.now() - t0, ms(5));

  // A genuinely NEW forwarded write still waits out the restart grace:
  // the hop does not launder it past the Gray-Cheriton restart rule.
  acks.clear();
  net.send_message(SiteId{0}, SiteId{2},
                   Message{WriteRequest{ObjectId{5}, Value{88}, us(200), {},
                                        SiteId{0}, 2}},
                   64);
  sim.run_until();
  EXPECT_EQ(b.stats().writes_deferred, 1u);
  EXPECT_EQ(b.stats().writes_applied, 1u);
  ASSERT_EQ(acks.size(), 1u);
  // The grace window runs from arm_restart_grace (sim time zero), so the
  // deferred write cannot complete before one full window has elapsed.
  EXPECT_GE(sim.now(), ms(20));
}

TEST(Recovery, ForwardedWriteIsExactlyOnceAcrossOwnershipMove) {
  // The rebalance variant of the owner-restart property: the object's
  // owner does not die, ownership MOVES — client 0, entry server A
  // (site 2), old owner B (site 3), new owner C (site 4). After the move,
  // anti-entropy (collect_slice -> install_sync_record) carries B's state
  // for the slice into C, including the (writer, request_id) provenance,
  // so a client retransmission of a write B applied re-acks at C with the
  // original verdict instead of applying a second time.
  Simulator sim;
  Network net(sim, 5, std::make_unique<FixedLatency>(us(10)), NetworkConfig{},
              Rng(1));
  ObjectServer a(sim, net, SiteId{2}, 5, PushPolicy::kNone, MessageSizes{},
                 std::vector<SiteId>{}, ServerConfig{});
  ObjectServer b(sim, net, SiteId{3}, 5, PushPolicy::kNone, MessageSizes{},
                 std::vector<SiteId>{}, ServerConfig{});
  ObjectServer c(sim, net, SiteId{4}, 5, PushPolicy::kNone, MessageSizes{},
                 std::vector<SiteId>{}, ServerConfig{});
  const auto owner_b = [](ObjectId) { return SiteId{3}; };
  a.set_ownership(owner_b);
  b.set_ownership(owner_b);
  c.set_ownership(owner_b);
  a.attach();
  b.attach();
  c.attach();
  std::vector<Message> acks;
  net.register_site(SiteId{0},
                    [&acks](SiteId, const Message& m) { acks.push_back(m); });

  net.send_message(SiteId{0}, SiteId{2},
                   Message{WriteRequest{ObjectId{5}, Value{77}, us(100), {},
                                        SiteId{0}, 1}},
                   64);
  sim.run_until();
  EXPECT_EQ(b.stats().writes_applied, 1u);
  ASSERT_EQ(acks.size(), 1u);
  const auto* first_ack = std::get_if<WriteAck>(&acks[0]);
  ASSERT_NE(first_ack, nullptr);
  const std::uint64_t version_at_b = first_ack->version;

  // Ownership moves to C (the ring rebalanced); every server adopts the
  // new table, and C pulls its slice from the previous owner.
  const auto owner_c = [](ObjectId) { return SiteId{4}; };
  a.set_ownership(owner_c);
  b.set_ownership(owner_c);
  c.set_ownership(owner_c);
  std::vector<wire::SliceRecord> slice;
  std::uint32_t next_cursor = 0;
  EXPECT_TRUE(b.collect_slice(SiteId{4}, /*cursor=*/0, /*max_records=*/128,
                              /*if_newer_than_us=*/-1, slice, next_cursor));
  ASSERT_EQ(slice.size(), 1u);
  // The streamed record carries the CLIENT's identity, not B's.
  EXPECT_EQ(slice[0].writer, 0u);
  EXPECT_EQ(slice[0].request_id, 1u);
  EXPECT_EQ(slice[0].version, version_at_b);
  for (const wire::SliceRecord& rec : slice) {
    EXPECT_TRUE(c.install_sync_record(rec));
  }
  EXPECT_EQ(c.stats().slices_synced, 1u);

  // The client's ack was lost; it retransmits through the entry server,
  // which now forwards to C. C's synced dedup slot re-acks the pre-move
  // verdict — nothing applies twice anywhere.
  acks.clear();
  net.send_message(SiteId{0}, SiteId{2},
                   Message{WriteRequest{ObjectId{5}, Value{77}, us(100), {},
                                        SiteId{0}, 1}},
                   64);
  sim.run_until();
  EXPECT_EQ(c.stats().duplicate_writes, 1u);
  EXPECT_EQ(c.stats().writes_applied, 0u);
  EXPECT_EQ(b.stats().writes_applied, 1u);  // unchanged: B never saw it
  ASSERT_EQ(acks.size(), 1u);
  const auto* re_ack = std::get_if<WriteAck>(&acks[0]);
  ASSERT_NE(re_ack, nullptr);
  EXPECT_EQ(re_ack->request_id, 1u);
  EXPECT_EQ(re_ack->version, version_at_b);

  // The installed record seeded C's version counter: a genuinely new
  // write continues past it instead of colliding at version 1.
  acks.clear();
  net.send_message(SiteId{0}, SiteId{2},
                   Message{WriteRequest{ObjectId{5}, Value{88}, us(200), {},
                                        SiteId{0}, 2}},
                   64);
  sim.run_until();
  EXPECT_EQ(c.stats().writes_applied, 1u);
  ASSERT_EQ(acks.size(), 1u);
  const auto* new_ack = std::get_if<WriteAck>(&acks[0]);
  ASSERT_NE(new_ack, nullptr);
  EXPECT_EQ(new_ack->version, version_at_b + 1);
}

TEST(Admission, ReadsShedFirstWritesDeferThenApply) {
  // admit_rate 100/s refills 100 micro-tokens per simulated microsecond
  // (one admitted op per 10ms); burst 8 caps the bucket at 8e6 with a
  // quarter-burst (2e6) reserve that only reads must clear. The sim clock
  // starts at zero, so the bucket starts empty — maximal starvation.
  ServerConfig cfg;
  cfg.admit_rate_per_s = 100;
  cfg.admit_burst = 8;
  Cell cell(cfg);
  struct Shed {
    std::uint64_t request_id = 0;
    std::int64_t retry_us = 0;
  };
  std::vector<Shed> sheds;
  cell.server->set_overloaded_sender(
      [&sheds](SiteId client, ObjectId object, std::uint64_t request_id,
               std::int64_t retry_after_us) {
        EXPECT_EQ(client.value, 0u);
        EXPECT_EQ(object.value, 1u);
        sheds.push_back(Shed{request_id, retry_after_us});
      });
  cell.server->attach();
  std::vector<Message> replies;
  cell.capture_replies(0, replies);

  // A read against the empty bucket sheds: no FetchReply, one kOverloaded
  // with a retry-after inside the protocol's [1ms, 50ms] clamp.
  cell.net->send_message(SiteId{0}, SiteId{2},
                         Message{FetchRequest{ObjectId{1}, SiteId{0}, 1}}, 64);
  cell.sim.run_until();
  EXPECT_TRUE(replies.empty());
  ASSERT_EQ(sheds.size(), 1u);
  EXPECT_EQ(sheds[0].request_id, 1u);
  EXPECT_GE(sheds[0].retry_us, 1'000);
  EXPECT_LE(sheds[0].retry_us, 50'000);
  EXPECT_EQ(cell.server->stats().admission_reads_shed, 1u);
  EXPECT_EQ(cell.server->stats().overloaded_replies, 1u);

  // A write against the same starved bucket defers (bounded budget), then
  // applies and acks — admission delays writes, it never drops them.
  cell.send_write(0, ObjectId{1}, Value{5}, us(50), 2);
  EXPECT_EQ(cell.server->stats().writes_applied, 1u);
  EXPECT_GE(cell.server->stats().admission_writes_deferred, 1u);
  ASSERT_EQ(replies.size(), 1u);
  const auto* ack = std::get_if<WriteAck>(&replies[0]);
  ASSERT_NE(ack, nullptr);
  EXPECT_EQ(ack->request_id, 2u);

  // Refill to the cap, then drain with reads: exactly six admit (the
  // seventh would dip into the write reserve) and the bounce costs no
  // tokens. A write admits immediately where the read bounced — reads
  // shed FIRST, writes still flow.
  cell.net->run_after(ms(200), [] {});
  cell.sim.run_until();
  replies.clear();
  std::uint64_t rid = 10;
  for (int i = 0; i < 6; ++i) {
    cell.net->send_message(
        SiteId{0}, SiteId{2},
        Message{FetchRequest{ObjectId{1}, SiteId{0}, rid++}}, 64);
    cell.sim.run_until();
  }
  EXPECT_EQ(replies.size(), 6u);
  EXPECT_EQ(cell.server->stats().admission_reads_shed, 1u);
  cell.net->send_message(SiteId{0}, SiteId{2},
                         Message{FetchRequest{ObjectId{1}, SiteId{0}, rid++}},
                         64);
  cell.sim.run_until();
  EXPECT_EQ(replies.size(), 6u);  // the seventh read bounced...
  EXPECT_EQ(cell.server->stats().admission_reads_shed, 2u);
  const std::uint64_t deferred_before =
      cell.server->stats().admission_writes_deferred;
  cell.send_write(0, ObjectId{1}, Value{6}, us(300), 3);
  EXPECT_EQ(cell.server->stats().writes_applied, 2u);  // ...the write flowed
  EXPECT_EQ(cell.server->stats().admission_writes_deferred, deferred_before);
}

TEST(Admission, RateZeroDisablesTheGateEntirely) {
  Cell cell;  // default config: admit_rate_per_s == 0
  cell.server->attach();
  std::vector<Message> replies;
  cell.capture_replies(0, replies);
  // Even at sim time ~0 (where a rate-limited bucket would be empty)
  // every read serves and nothing sheds.
  for (std::uint64_t rid = 1; rid <= 8; ++rid) {
    cell.net->send_message(
        SiteId{0}, SiteId{2},
        Message{FetchRequest{ObjectId{1}, SiteId{0}, rid}}, 64);
    cell.sim.run_until();
  }
  EXPECT_EQ(replies.size(), 8u);
  EXPECT_EQ(cell.server->stats().admission_reads_shed, 0u);
  EXPECT_EQ(cell.server->stats().overloaded_replies, 0u);
}

}  // namespace
}  // namespace timedc
