// Fault injection and reliable RPC: the robustness claims.
//
// - The FaultInjector executes its plan deterministically: partitions cut
//   links both ways and heal, crash intervals silence a node, windows
//   drop/duplicate exactly per plan and seed.
// - A full experiment under 5% background loss COMPLETES (this used to
//   strand clients forever on a lost reply) — the retry layer makes every
//   operation finish or be explicitly abandoned.
// - Same seed + same FaultPlan = bit-identical ExperimentResult.
// - The acceptance scenario: >=5% drops, a healed partition, and one
//   mid-run crash/restart of each server — all operations complete,
//   admitted reads are never late (late_fraction == 0), faults show up
//   as retries/failovers instead.
#include <gtest/gtest.h>

#include "core/trace_io.hpp"
#include "protocol/experiment.hpp"
#include "sim/faults.hpp"

namespace timedc {
namespace {

SimTime ms(std::int64_t n) { return SimTime::millis(n); }

TEST(FaultInjectorTest, PartitionCutsBothDirectionsAndHeals) {
  FaultPlan plan;
  Partition cut;
  cut.start = ms(10);
  cut.heal = ms(20);
  cut.side_a = {SiteId{0}, SiteId{1}};
  cut.side_b = {SiteId{2}};
  plan.partitions.push_back(cut);
  FaultInjector inj(plan, Rng(1));

  EXPECT_FALSE(inj.link_cut(SiteId{0}, SiteId{2}, ms(5)));   // before
  EXPECT_TRUE(inj.link_cut(SiteId{0}, SiteId{2}, ms(15)));   // during
  EXPECT_TRUE(inj.link_cut(SiteId{2}, SiteId{0}, ms(15)));   // both ways
  EXPECT_TRUE(inj.link_cut(SiteId{1}, SiteId{2}, ms(15)));
  EXPECT_FALSE(inj.link_cut(SiteId{0}, SiteId{1}, ms(15)));  // same side
  EXPECT_FALSE(inj.link_cut(SiteId{0}, SiteId{2}, ms(20)));  // healed
}

TEST(FaultInjectorTest, CrashIntervalSilencesNode) {
  FaultPlan plan;
  plan.crashes.push_back(ServerCrash{SiteId{3}, ms(10), ms(30)});
  FaultInjector inj(plan, Rng(1));

  EXPECT_FALSE(inj.node_down(SiteId{3}, ms(9)));
  EXPECT_TRUE(inj.node_down(SiteId{3}, ms(10)));
  EXPECT_TRUE(inj.node_down(SiteId{3}, ms(29)));
  EXPECT_FALSE(inj.node_down(SiteId{3}, ms(30)));  // restarted
  EXPECT_FALSE(inj.node_down(SiteId{4}, ms(15)));  // other nodes unaffected

  // Messages to or from a down node are dropped.
  EXPECT_TRUE(inj.on_send(SiteId{0}, SiteId{3}, ms(15)).drop);
  EXPECT_TRUE(inj.on_send(SiteId{3}, SiteId{0}, ms(15)).drop);
  EXPECT_FALSE(inj.on_send(SiteId{0}, SiteId{3}, ms(31)).drop);
  EXPECT_EQ(inj.stats().dropped_node_down, 2u);
}

TEST(FaultInjectorTest, DropWindowIsScopedAndCounted) {
  FaultPlan plan;
  DropWindow w;
  w.start = ms(1);
  w.end = ms(2);
  w.probability = 1.0;
  w.from = 0;
  w.to = 1;
  plan.drops.push_back(w);
  FaultInjector inj(plan, Rng(7));

  EXPECT_TRUE(inj.on_send(SiteId{0}, SiteId{1}, ms(1)).drop);
  EXPECT_FALSE(inj.on_send(SiteId{1}, SiteId{0}, ms(1)).drop);  // directional
  EXPECT_FALSE(inj.on_send(SiteId{0}, SiteId{1}, ms(2)).drop);  // window over
  EXPECT_EQ(inj.stats().dropped_by_window, 1u);
}

TEST(FaultInjectorTest, DecisionStreamIsDeterministic) {
  FaultPlan plan;
  DropWindow w;
  w.start = SimTime::zero();
  w.end = ms(100);
  w.probability = 0.5;
  plan.drops.push_back(w);
  DuplicateWindow d;
  d.start = SimTime::zero();
  d.end = ms(100);
  d.probability = 0.5;
  plan.duplications.push_back(d);

  FaultInjector a(plan, Rng(42));
  FaultInjector b(plan, Rng(42));
  for (int i = 0; i < 200; ++i) {
    const auto da = a.on_send(SiteId{0}, SiteId{1}, ms(i % 100));
    const auto db = b.on_send(SiteId{0}, SiteId{1}, ms(i % 100));
    ASSERT_EQ(da.drop, db.drop);
    ASSERT_EQ(da.duplicate, db.duplicate);
  }
  EXPECT_EQ(a.stats().dropped_by_window, b.stats().dropped_by_window);
  EXPECT_EQ(a.stats().duplicated, b.stats().duplicated);
}

ExperimentConfig lossy_config(ProtocolKind kind) {
  ExperimentConfig config;
  config.kind = kind;
  config.delta = ms(20);
  config.workload.num_clients = 4;
  config.workload.num_objects = 8;
  config.workload.write_ratio = 0.2;
  config.workload.mean_think_time = ms(4);
  config.workload.horizon = ms(500);
  config.seed = 5;
  config.drop_probability = 0.05;
  return config;
}

// Regression: a lost reply used to strand the client forever (the
// experiment's op-count assertion fired, or the run returned short).
// With the retry layer, 5% uniform loss completes every operation.
TEST(FaultExperimentTest, CompletesUnderBackgroundLoss) {
  for (const auto kind :
       {ProtocolKind::kTimedSerial, ProtocolKind::kTimedCausal}) {
    const auto r = run_experiment(lossy_config(kind));
    EXPECT_GT(r.operations, 100u) << to_cstring(kind);
    EXPECT_GT(r.network.messages_dropped, 0u) << to_cstring(kind);
    EXPECT_GT(r.cache.retries, 0u) << to_cstring(kind);
    // Loss never makes an admitted read late — expiry is local.
    EXPECT_EQ(r.late_fraction, 0.0) << to_cstring(kind);
  }
}

ExperimentConfig hostile_config(ProtocolKind kind) {
  ExperimentConfig config;
  config.kind = kind;
  config.delta = ms(25);
  config.workload.num_clients = 4;
  config.workload.num_objects = 8;
  config.workload.write_ratio = 0.25;
  config.workload.mean_think_time = ms(5);
  config.workload.horizon = SimTime::seconds(1);
  config.num_servers = 2;
  config.seed = 9;
  config.drop_probability = 0.05;
  // Clients are sites 0..3; servers are 4 and 5.
  Partition cut;
  cut.start = ms(200);
  cut.heal = ms(320);
  cut.side_a = {SiteId{0}, SiteId{1}};
  cut.side_b = {SiteId{4}, SiteId{5}};
  config.faults.partitions.push_back(cut);
  config.faults.crashes.push_back(ServerCrash{SiteId{4}, ms(400), ms(480)});
  config.faults.crashes.push_back(ServerCrash{SiteId{5}, ms(600), ms(680)});
  DuplicateWindow dup;
  dup.start = ms(750);
  dup.end = ms(850);
  dup.probability = 0.5;
  config.faults.duplications.push_back(dup);
  return config;
}

// The issue's acceptance scenario: >=5% drops, one mid-run crash/restart
// of each server, one healed partition. Every operation completes or is
// explicitly abandoned (run_experiment asserts completed == planned), and
// the lifetime caches report late_fraction == 0 for admitted reads.
TEST(FaultExperimentTest, AcceptanceScenarioSurvivesDropsCrashesPartition) {
  for (const auto kind :
       {ProtocolKind::kTimedSerial, ProtocolKind::kTimedCausal}) {
    const auto r = run_experiment(hostile_config(kind));
    EXPECT_GT(r.operations, 100u) << to_cstring(kind);
    EXPECT_EQ(r.faults.crashes, 2u) << to_cstring(kind);
    EXPECT_EQ(r.faults.restarts, 2u) << to_cstring(kind);
    EXPECT_EQ(r.server.crashes, 2u) << to_cstring(kind);
    EXPECT_EQ(r.server.restarts, 2u) << to_cstring(kind);
    EXPECT_GT(r.faults.dropped_by_partition + r.faults.dropped_node_down, 0u)
        << to_cstring(kind);
    EXPECT_GT(r.faults.duplicated, 0u) << to_cstring(kind);
    EXPECT_GT(r.cache.retries, 0u) << to_cstring(kind);
    // Duplicated replies were suppressed, duplicated writes deduped.
    EXPECT_GT(r.cache.duplicate_replies + r.server.duplicate_writes, 0u)
        << to_cstring(kind);
    // The robustness headline: no admitted read was ever late.
    EXPECT_EQ(r.late_fraction, 0.0) << to_cstring(kind);
  }
}

// Push-mode clients degrade gracefully across a server crash: the crash
// wipes the cacher set (soft state), but finite Delta forces the clients
// back to validate, which re-subscribes them.
TEST(FaultExperimentTest, PushClientsDegradeToPullAcrossCrash) {
  auto config = hostile_config(ProtocolKind::kTimedSerial);
  config.push = PushPolicy::kInvalidate;
  const auto r = run_experiment(config);
  EXPECT_GT(r.server.pushes, 0u);
  EXPECT_EQ(r.late_fraction, 0.0);
}

TEST(FaultExperimentTest, SameSeedSamePlanIsBitReproducible) {
  const auto a = run_experiment(hostile_config(ProtocolKind::kTimedSerial));
  const auto b = run_experiment(hostile_config(ProtocolKind::kTimedSerial));
  EXPECT_EQ(a.operations, b.operations);
  EXPECT_EQ(a.ops_abandoned, b.ops_abandoned);
  EXPECT_EQ(a.cache.retries, b.cache.retries);
  EXPECT_EQ(a.cache.failovers, b.cache.failovers);
  EXPECT_EQ(a.cache.duplicate_replies, b.cache.duplicate_replies);
  EXPECT_EQ(a.cache.cache_hits, b.cache.cache_hits);
  EXPECT_EQ(a.server.writes_applied, b.server.writes_applied);
  EXPECT_EQ(a.server.duplicate_writes, b.server.duplicate_writes);
  EXPECT_EQ(a.network.messages_sent, b.network.messages_sent);
  EXPECT_EQ(a.network.messages_dropped, b.network.messages_dropped);
  EXPECT_EQ(a.network.messages_duplicated, b.network.messages_duplicated);
  EXPECT_EQ(a.faults.dropped_by_partition, b.faults.dropped_by_partition);
  EXPECT_EQ(a.faults.dropped_node_down, b.faults.dropped_node_down);
  EXPECT_EQ(a.faults.duplicated, b.faults.duplicated);
  EXPECT_EQ(a.mean_staleness_us, b.mean_staleness_us);
  EXPECT_EQ(a.max_staleness, b.max_staleness);
  EXPECT_EQ(a.unavailable_fraction, b.unavailable_fraction);
  // The recorded executions are identical operation for operation.
  EXPECT_EQ(write_trace(a.history), write_trace(b.history));
}

// A server that crashes and never comes back: clients burn their retry
// budget, abandon explicitly, and the run still terminates — no client
// hangs. Abandoned ops are excluded from the recorded history.
TEST(FaultExperimentTest, PermanentCrashAbandonsInsteadOfHanging) {
  ExperimentConfig config;
  config.kind = ProtocolKind::kTimedSerial;
  config.delta = ms(20);
  config.workload.num_clients = 2;
  config.workload.num_objects = 4;
  config.workload.write_ratio = 0.2;
  config.workload.mean_think_time = ms(4);
  config.workload.horizon = ms(300);
  config.seed = 3;
  config.faults.crashes.push_back(
      ServerCrash{SiteId{2}, ms(100)});  // never restarts
  config.retry.max_attempts = 4;
  config.retry.base_timeout = ms(2);
  const auto r = run_experiment(config);
  EXPECT_GT(r.operations, 0u);
  EXPECT_GT(r.ops_abandoned, 0u);
  EXPECT_GT(r.unavailable_fraction, 0.0);
  // Every op either succeeded before the crash or was abandoned; the
  // recorded history holds only the former.
  EXPECT_LT(r.history.size(), r.operations);
  EXPECT_EQ(r.late_fraction, 0.0);
}

// Duplication alone (no loss): the network delivers some messages twice;
// clients suppress duplicate replies, the server dedups retransmitted
// writes, and the run's answers are unaffected.
TEST(FaultExperimentTest, DuplicationIsSuppressed) {
  ExperimentConfig config;
  config.kind = ProtocolKind::kTimedSerial;
  config.delta = ms(20);
  config.workload.num_clients = 3;
  config.workload.num_objects = 6;
  config.workload.mean_think_time = ms(4);
  config.workload.horizon = ms(400);
  config.seed = 13;
  DuplicateWindow dup;
  dup.start = SimTime::zero();
  dup.end = ms(400);
  dup.probability = 0.4;
  config.faults.duplications.push_back(dup);
  const auto r = run_experiment(config);
  EXPECT_GT(r.network.messages_duplicated, 0u);
  EXPECT_GT(r.cache.duplicate_replies, 0u);
  EXPECT_EQ(r.ops_abandoned, 0u);
  EXPECT_EQ(r.late_fraction, 0.0);
  EXPECT_GT(r.network.messages_delivered, r.network.messages_sent);
}

}  // namespace
}  // namespace timedc
