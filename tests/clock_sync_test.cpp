// Tests for the Cristian-style clock synchronization protocol: accuracy
// bounds, pairwise eps, and behaviour under drift and latency jitter.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "sim/clock_sync.hpp"

namespace timedc {
namespace {

SimTime us(std::int64_t n) { return SimTime::micros(n); }
SimTime ms(std::int64_t n) { return SimTime::millis(n); }

struct SyncWorld {
  Simulator sim;
  std::unique_ptr<Network> net;
  PerfectClock server_clock;
  std::unique_ptr<TimeServer> server;
  std::vector<std::unique_ptr<DriftingClock>> hardware;
  std::vector<std::unique_ptr<SyncedSiteClock>> clocks;

  SyncWorld(std::size_t clients, SimTime min_lat, SimTime max_lat,
            double drift_ppm, std::uint64_t seed = 1) {
    net = std::make_unique<Network>(
        sim, clients + 1, std::make_unique<UniformLatency>(min_lat, max_lat),
        NetworkConfig{}, Rng(seed));
    const SiteId server_site{static_cast<std::uint32_t>(clients)};
    server = std::make_unique<TimeServer>(sim, *net, server_site, &server_clock);
    server->attach();
    for (std::uint32_t c = 0; c < clients; ++c) {
      // Alternate fast/slow oscillators with big initial offsets.
      const double ppm = (c % 2 == 0 ? 1.0 : -1.0) * drift_ppm;
      hardware.push_back(std::make_unique<DriftingClock>(
          us(static_cast<std::int64_t>(1000 * (c + 1))), ppm));
      clocks.push_back(std::make_unique<SyncedSiteClock>(
          sim, *net, SiteId{c}, server_site, hardware.back().get()));
      clocks.back()->attach();
    }
  }

  void run_with_sync(SimTime period, SimTime horizon) {
    for (auto& c : clocks) c->start(period);
    sim.run_until(horizon);
  }
};

TEST(ClockSyncTest, SingleExchangeBoundsErrorByHalfRtt) {
  SyncWorld world(1, us(100), us(900), /*drift_ppm=*/0.0);
  // Before sync, the hardware offset (1ms) is the error.
  EXPECT_EQ(world.clocks[0]->error(), us(1000));
  world.run_with_sync(SimTime::seconds(10), ms(5));
  ASSERT_GE(world.clocks[0]->stats().syncs, 1u);
  const SimTime rtt = world.clocks[0]->stats().last_rtt;
  EXPECT_LE(std::abs(world.clocks[0]->error().as_micros()),
            rtt.as_micros() / 2 + 1);
}

TEST(ClockSyncTest, SymmetricLatencyGivesNearPerfectSync) {
  SyncWorld world(1, us(500), us(500), 0.0);  // fixed = symmetric RTT halves
  world.run_with_sync(ms(10), ms(50));
  EXPECT_LE(std::abs(world.clocks[0]->error().as_micros()), 1);
}

TEST(ClockSyncTest, PeriodicResyncBoundsDriftingClock) {
  const double ppm = 200.0;  // strongly drifting oscillator
  SyncWorld world(1, us(100), us(400), ppm);
  const SimTime period = ms(20);
  world.run_with_sync(period, SimTime::seconds(2));
  // Bound: RTT/2 + drift over one period (+1us rounding).
  const std::int64_t bound =
      400 / 2 +
      static_cast<std::int64_t>(static_cast<double>(period.as_micros()) * ppm /
                                1e6) +
      2;
  EXPECT_LE(std::abs(world.clocks[0]->error().as_micros()), bound);
  EXPECT_GE(world.clocks[0]->stats().syncs, 50u);
}

TEST(ClockSyncTest, PairwiseEpsBoundAcrossSites) {
  // The paper's eps: no two site clocks differ by more than eps. With the
  // Cristian bound, eps = 2*(RTT_max/2 + drift budget).
  const double ppm = 100.0;
  SyncWorld world(4, us(100), us(600), ppm, 7);
  const SimTime period = ms(25);
  for (auto& c : world.clocks) c->start(period);
  const std::int64_t per_clock =
      600 / 2 +
      static_cast<std::int64_t>(static_cast<double>(period.as_micros()) * ppm /
                                1e6) +
      2;
  // Sample pairwise skew along the run (after the first sync settles).
  std::int64_t worst = 0;
  for (std::int64_t t = 100000; t <= 2000000; t += 37000) {
    world.sim.run_until(us(t));
    for (std::size_t a = 0; a < world.clocks.size(); ++a) {
      for (std::size_t b = a + 1; b < world.clocks.size(); ++b) {
        const std::int64_t diff =
            (world.clocks[a]->now() - world.clocks[b]->now()).as_micros();
        worst = std::max(worst, std::abs(diff));
      }
    }
  }
  EXPECT_LE(worst, 2 * per_clock);
  EXPECT_GT(worst, 0);  // clocks are not magically identical
}

TEST(ClockSyncTest, StatsTrackRttAndCorrections) {
  SyncWorld world(1, us(200), us(800), 50.0);
  world.run_with_sync(ms(10), ms(100));
  const auto& stats = world.clocks[0]->stats();
  EXPECT_GE(stats.syncs, 9u);
  EXPECT_GE(stats.last_rtt, us(400));   // 2 * min one-way
  EXPECT_LE(stats.max_rtt, us(1600));   // 2 * max one-way
  EXPECT_EQ(world.server->requests_served(), stats.syncs);
}

TEST(ClockSyncTest, TighterPeriodTracksBetter) {
  const double ppm = 300.0;
  auto worst_error = [&](SimTime period) {
    SyncWorld world(1, us(100), us(300), ppm, 11);
    world.clocks[0]->start(period);
    std::int64_t worst = 0;
    for (std::int64_t t = 50000; t <= 1000000; t += 13000) {
      world.sim.run_until(us(t));
      worst = std::max(worst, std::abs(world.clocks[0]->error().as_micros()));
    }
    return worst;
  };
  EXPECT_LE(worst_error(ms(10)), worst_error(ms(200)));
}

}  // namespace
}  // namespace timedc
