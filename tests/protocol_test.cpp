// Tests for the lifetime-based protocol family: unit-level rule behaviour,
// end-to-end experiment runs, the paper's qualitative cost claims
// (Section 5/6), and the protocol -> checker integration: small recorded
// runs must satisfy TSC / TCC under the appropriate Delta.
#include <gtest/gtest.h>

#include <memory>

#include "core/checkers.hpp"
#include "protocol/experiment.hpp"
#include "protocol/timed_causal_cache.hpp"
#include "protocol/timed_serial_cache.hpp"

namespace timedc {
namespace {

SimTime us(std::int64_t n) { return SimTime::micros(n); }
SimTime ms(std::int64_t n) { return SimTime::millis(n); }

/// A tiny fixture wiring one server and two serial-cache clients directly.
class SerialCacheFixture : public ::testing::Test {
 protected:
  void init(SimTime delta, bool mark_old = true,
            PushPolicy push = PushPolicy::kNone) {
    net_ = std::make_unique<Network>(sim_, 3,
                                     std::make_unique<FixedLatency>(us(10)),
                                     NetworkConfig{}, Rng(1));
    server_ = std::make_unique<ObjectServer>(sim_, *net_, SiteId{2}, 2, push,
                                             MessageSizes{});
    server_->attach();
    for (std::uint32_t c = 0; c < 2; ++c) {
      clients_.push_back(std::make_unique<TimedSerialCache>(
          sim_, *net_, SiteId{c}, SiteId{2}, &clock_, delta, mark_old,
          MessageSizes{}));
      clients_.back()->attach();
    }
  }

  Value read_now(int c, ObjectId obj) {
    Value got{-1};
    clients_[c]->read(obj, [&](Value v, SimTime) { got = v; });
    sim_.run_until();
    return got;
  }

  void write_now(int c, ObjectId obj, Value v) {
    clients_[c]->write(obj, v, [](SimTime) {});
    sim_.run_until();
  }

  Simulator sim_;
  PerfectClock clock_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<ObjectServer> server_;
  std::vector<std::unique_ptr<TimedSerialCache>> clients_;
};

TEST_F(SerialCacheFixture, ReadThroughAndCacheHit) {
  init(SimTime::infinity());
  EXPECT_EQ(read_now(0, ObjectId{0}), Value{0});  // initial value
  EXPECT_EQ(clients_[0]->stats().cache_misses, 1u);
  EXPECT_EQ(read_now(0, ObjectId{0}), Value{0});  // now cached
  EXPECT_EQ(clients_[0]->stats().cache_hits, 1u);
}

TEST_F(SerialCacheFixture, WriteThroughVisibleToOthers) {
  init(SimTime::infinity());
  write_now(0, ObjectId{0}, Value{7});
  EXPECT_EQ(read_now(1, ObjectId{0}), Value{7});
  EXPECT_EQ(server_->stats().writes_applied, 1u);
}

TEST_F(SerialCacheFixture, OwnWriteServedFromCache) {
  init(SimTime::infinity());
  write_now(0, ObjectId{0}, Value{7});
  EXPECT_EQ(read_now(0, ObjectId{0}), Value{7});
  EXPECT_EQ(clients_[0]->stats().cache_hits, 1u);
  EXPECT_EQ(clients_[0]->stats().cache_misses, 0u);
}

TEST_F(SerialCacheFixture, TscRule3ForcesRevalidationAfterDelta) {
  init(us(1000));
  EXPECT_EQ(read_now(0, ObjectId{0}), Value{0});
  // Update from the other client; client 0's copy is now stale.
  write_now(1, ObjectId{0}, Value{5});
  // Within Delta the stale copy may still be served (that is the contract).
  // Wait out Delta: the next read must revalidate and see the new value.
  sim_.schedule_after(us(2000), [] {});
  sim_.run_until();
  EXPECT_EQ(read_now(0, ObjectId{0}), Value{5});
  EXPECT_GE(clients_[0]->stats().validations, 1u);
}

TEST_F(SerialCacheFixture, ScDeltaInfinityNeverRevalidatesQuietObjects) {
  init(SimTime::infinity());
  EXPECT_EQ(read_now(0, ObjectId{0}), Value{0});
  sim_.schedule_after(SimTime::seconds(100), [] {});
  sim_.run_until();
  // Even after an eternity, a cache hit: no rule 3 without Delta.
  EXPECT_EQ(read_now(0, ObjectId{0}), Value{0});
  EXPECT_EQ(clients_[0]->stats().cache_hits, 1u);
  EXPECT_EQ(clients_[0]->stats().validations, 0u);
}

TEST_F(SerialCacheFixture, ValidationExtendsLifetime) {
  init(us(500), /*mark_old=*/true);
  EXPECT_EQ(read_now(0, ObjectId{0}), Value{0});
  sim_.schedule_after(us(1000), [] {});
  sim_.run_until();
  // No writes happened: validation returns "still valid" (a 304).
  EXPECT_EQ(read_now(0, ObjectId{0}), Value{0});
  EXPECT_EQ(clients_[0]->stats().validations, 1u);
  EXPECT_EQ(clients_[0]->stats().validations_ok, 1u);
}

TEST_F(SerialCacheFixture, InvalidateModeDropsInsteadOfMarking) {
  init(us(500), /*mark_old=*/false);
  EXPECT_EQ(read_now(0, ObjectId{0}), Value{0});
  sim_.schedule_after(us(1000), [] {});
  sim_.run_until();
  EXPECT_EQ(read_now(0, ObjectId{0}), Value{0});
  // The stale entry was dropped outright: a full miss, not a validation.
  EXPECT_EQ(clients_[0]->stats().invalidations, 1u);
  EXPECT_EQ(clients_[0]->stats().cache_misses, 2u);
  EXPECT_EQ(clients_[0]->stats().validations, 0u);
}

TEST_F(SerialCacheFixture, Rule1InstallRaisesContextAndEvicts) {
  init(SimTime::infinity(), /*mark_old=*/false);
  // Client 0 caches A (omega = fetch time).
  EXPECT_EQ(read_now(0, ObjectId{0}), Value{0});
  // Much later, client 1 writes B; client 0 then fetches B whose alpha is
  // far beyond A's omega: rule 1 raises Context past A's lifetime.
  sim_.schedule_after(ms(10), [] {});
  sim_.run_until();
  write_now(1, ObjectId{1}, Value{9});
  EXPECT_EQ(read_now(0, ObjectId{1}), Value{9});
  EXPECT_EQ(clients_[0]->stats().invalidations, 1u);
  EXPECT_EQ(clients_[0]->cached_entries(), 1u);  // only B remains
}

TEST_F(SerialCacheFixture, PushInvalidationKeepsCacheCoherent) {
  init(SimTime::infinity(), true, PushPolicy::kInvalidate);
  EXPECT_EQ(read_now(0, ObjectId{0}), Value{0});
  write_now(1, ObjectId{0}, Value{3});
  // The server pushed an invalidation to client 0 (it was a cacher).
  EXPECT_EQ(clients_[0]->stats().push_invalidations, 1u);
  EXPECT_EQ(read_now(0, ObjectId{0}), Value{3});
}

TEST_F(SerialCacheFixture, PushUpdateRefreshesCache) {
  init(SimTime::infinity(), true, PushPolicy::kUpdate);
  EXPECT_EQ(read_now(0, ObjectId{0}), Value{0});
  write_now(1, ObjectId{0}, Value{3});
  EXPECT_EQ(clients_[0]->stats().push_updates, 1u);
  EXPECT_EQ(read_now(0, ObjectId{0}), Value{3});
  EXPECT_EQ(clients_[0]->stats().cache_hits, 1u);  // served locally
}

// --- Causal cache ----------------------------------------------------------

class CausalCacheFixture : public ::testing::Test {
 protected:
  void init(SimTime delta, bool mark_old = true) {
    net_ = std::make_unique<Network>(sim_, 3,
                                     std::make_unique<FixedLatency>(us(10)),
                                     NetworkConfig{}, Rng(2));
    server_ = std::make_unique<ObjectServer>(sim_, *net_, SiteId{2}, 2,
                                             PushPolicy::kNone, MessageSizes{});
    server_->attach();
    for (std::uint32_t c = 0; c < 2; ++c) {
      clients_.push_back(std::make_unique<TimedCausalCache>(
          sim_, *net_, SiteId{c}, SiteId{2}, &clock_, delta, mark_old,
          MessageSizes{}, 2));
      clients_.back()->attach();
    }
  }

  Value read_now(int c, ObjectId obj) {
    Value got{-1};
    clients_[c]->read(obj, [&](Value v, SimTime) { got = v; });
    sim_.run_until();
    return got;
  }

  void write_now(int c, ObjectId obj, Value v) {
    clients_[c]->write(obj, v, [](SimTime) {});
    sim_.run_until();
  }

  Simulator sim_;
  PerfectClock clock_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<ObjectServer> server_;
  std::vector<std::unique_ptr<TimedCausalCache>> clients_;
};

TEST_F(CausalCacheFixture, BasicReadWrite) {
  init(SimTime::infinity());
  write_now(0, ObjectId{0}, Value{4});
  EXPECT_EQ(read_now(1, ObjectId{0}), Value{4});
  EXPECT_EQ(read_now(0, ObjectId{0}), Value{4});  // own write cached
}

TEST_F(CausalCacheFixture, CausalInvalidationOnDependentRead) {
  init(SimTime::infinity(), /*mark_old=*/false);
  // Client 0 caches X. Client 1 writes X' then Y. When client 0 reads Y it
  // learns a timestamp causally after X's overwrite... X's cached omega_l is
  // the server knowledge at fetch time, which precedes the new writes, so
  // the causal sweep must evict X (the paper's CNN / Dow Jones scenario).
  EXPECT_EQ(read_now(0, ObjectId{0}), Value{0});
  write_now(1, ObjectId{0}, Value{5});
  write_now(1, ObjectId{1}, Value{6});
  EXPECT_EQ(read_now(0, ObjectId{1}), Value{6});
  EXPECT_GE(clients_[0]->stats().invalidations, 1u);
  // The re-read of X now fetches the new value: causality preserved.
  EXPECT_EQ(read_now(0, ObjectId{0}), Value{5});
}

TEST_F(CausalCacheFixture, OwnWriteDemotedAfterRemoteKnowledgeButCheap) {
  // Deviation from [39] (see timed_causal_cache.hpp): a locally written
  // copy is NOT exempt from the causal sweep — learning remote information
  // demotes it to old — but the recovery is a cheap 304-style validation,
  // not a refetch, and the value survives.
  init(SimTime::infinity(), /*mark_old=*/true);
  write_now(0, ObjectId{0}, Value{4});
  write_now(1, ObjectId{1}, Value{5});
  EXPECT_EQ(read_now(0, ObjectId{1}), Value{5});  // raises client 0's context
  EXPECT_EQ(read_now(0, ObjectId{0}), Value{4});
  EXPECT_GE(clients_[0]->stats().validations_ok, 1u);
}

TEST_F(CausalCacheFixture, OwnStaleCopyNotServedAfterCausalOverwrite) {
  // The hidden-write pattern the [39] exemption would admit: client 0
  // writes X; client 1 reads it, overwrites X (causally after), then writes
  // Y. Once client 0 reads Y it is causally after the overwrite and must
  // not keep serving its own stale X.
  init(SimTime::infinity(), /*mark_old=*/true);
  write_now(0, ObjectId{0}, Value{4});
  EXPECT_EQ(read_now(1, ObjectId{0}), Value{4});
  write_now(1, ObjectId{0}, Value{6});
  write_now(1, ObjectId{1}, Value{7});
  EXPECT_EQ(read_now(0, ObjectId{1}), Value{7});
  EXPECT_EQ(read_now(0, ObjectId{0}), Value{6});  // not the stale own 4
}

TEST_F(CausalCacheFixture, BetaRuleForcesTimeliness) {
  init(ms(1));
  EXPECT_EQ(read_now(0, ObjectId{0}), Value{0});
  write_now(1, ObjectId{0}, Value{5});
  sim_.schedule_after(ms(5), [] {});
  sim_.run_until();
  EXPECT_EQ(read_now(0, ObjectId{0}), Value{5});
  EXPECT_GE(clients_[0]->stats().validations, 1u);
}

TEST_F(CausalCacheFixture, DeltaInfinityNeverBetaInvalidates) {
  init(SimTime::infinity());
  EXPECT_EQ(read_now(0, ObjectId{0}), Value{0});
  sim_.schedule_after(SimTime::seconds(1000), [] {});
  sim_.run_until();
  EXPECT_EQ(read_now(0, ObjectId{0}), Value{0});
  EXPECT_EQ(clients_[0]->stats().cache_hits, 1u);
}

// --- End-to-end experiments ------------------------------------------------

ExperimentConfig small_config(ProtocolKind kind, SimTime delta,
                              std::uint64_t seed) {
  ExperimentConfig config;
  config.kind = kind;
  config.delta = delta;
  config.seed = seed;
  config.workload.num_clients = 3;
  config.workload.num_objects = 4;
  config.workload.write_ratio = 0.3;
  config.workload.mean_think_time = ms(5);
  config.workload.horizon = ms(120);
  config.min_latency = us(100);
  config.max_latency = us(400);
  return config;
}

TEST(ExperimentTest, RunsToCompletionAndRecordsHistory) {
  const auto result =
      run_experiment(small_config(ProtocolKind::kTimedSerial, ms(10), 3));
  EXPECT_GT(result.operations, 10u);
  EXPECT_EQ(result.history.size(), result.operations);
  EXPECT_FALSE(result.history.has_thin_air_read());
  EXPECT_GT(result.messages_per_op, 0.0);
}

TEST(ExperimentTest, DeterministicForSeed) {
  const auto a =
      run_experiment(small_config(ProtocolKind::kTimedCausal, ms(10), 7));
  const auto b =
      run_experiment(small_config(ProtocolKind::kTimedCausal, ms(10), 7));
  EXPECT_EQ(a.network.messages_sent, b.network.messages_sent);
  EXPECT_EQ(a.cache.cache_hits, b.cache.cache_hits);
  EXPECT_EQ(a.mean_staleness_us, b.mean_staleness_us);
}

TEST(ExperimentTest, MultiSeedReplicationMatchesSerialRuns) {
  // run_experiment_seeds fans seeds over the thread pool; each run must be
  // bit-identical to calling run_experiment with that seed serially.
  const auto config = small_config(ProtocolKind::kTimedSerial, ms(10), 0);
  const std::vector<std::uint64_t> seeds = {3, 14, 159, 2653};
  const auto parallel = run_experiment_seeds(config, seeds, 4);
  ASSERT_EQ(parallel.size(), seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    auto c = config;
    c.seed = seeds[i];
    const auto serial = run_experiment(c);
    EXPECT_EQ(parallel[i].network.messages_sent, serial.network.messages_sent);
    EXPECT_EQ(parallel[i].network.bytes_sent, serial.network.bytes_sent);
    EXPECT_EQ(parallel[i].cache.cache_hits, serial.cache.cache_hits);
    EXPECT_EQ(parallel[i].mean_staleness_us, serial.mean_staleness_us);
    EXPECT_EQ(parallel[i].history.to_string(), serial.history.to_string());
  }
}

TEST(ExperimentTest, TscStalenessBoundedByDeltaPlusSlack) {
  // The TSC protocol promise: a read never returns a value that has been
  // replaced for more than Delta (+ messaging slack: the value may be
  // overwritten while the reply is in flight, and the entry may be used
  // right at its freshness boundary).
  const SimTime delta = ms(5);
  auto config = small_config(ProtocolKind::kTimedSerial, delta, 11);
  config.workload.horizon = ms(300);
  const auto result = run_experiment(config);
  const SimTime slack = config.max_latency * 4;
  EXPECT_LE(result.max_staleness, delta + slack)
      << "staleness " << result.max_staleness.to_string();
}

TEST(ExperimentTest, SmallerDeltaReducesStaleness) {
  auto base = small_config(ProtocolKind::kTimedSerial, SimTime::infinity(), 13);
  base.workload.horizon = ms(400);
  base.workload.write_ratio = 0.4;
  auto timed = base;
  timed.delta = ms(2);
  const auto loose = run_experiment(base);
  const auto tight = run_experiment(timed);
  EXPECT_LE(tight.max_staleness, loose.max_staleness);
  EXPECT_LE(tight.mean_staleness_us, loose.mean_staleness_us + 1.0);
}

TEST(ExperimentTest, SmallerDeltaCostsMoreMessages) {
  auto base = small_config(ProtocolKind::kTimedSerial, SimTime::infinity(), 17);
  base.workload.horizon = ms(400);
  auto timed = base;
  timed.delta = ms(1);
  const auto loose = run_experiment(base);
  const auto tight = run_experiment(timed);
  EXPECT_GE(tight.messages_per_op, loose.messages_per_op);
  EXPECT_LE(tight.cache.hit_ratio(), loose.cache.hit_ratio() + 1e-9);
}

TEST(ExperimentTest, TscInvalidatesAtLeastAsMuchAsTcc) {
  // Section 5.3: "this implementation of TCC tends to invalidate more
  // objects than CC but less than TSC".
  const SimTime delta = ms(3);
  auto cfg_tsc = small_config(ProtocolKind::kTimedSerial, delta, 19);
  auto cfg_tcc = small_config(ProtocolKind::kTimedCausal, delta, 19);
  cfg_tsc.workload.horizon = cfg_tcc.workload.horizon = ms(400);
  const auto tsc = run_experiment(cfg_tsc);
  const auto tcc = run_experiment(cfg_tcc);
  const auto churn = [](const ExperimentResult& r) {
    return r.cache.invalidations + r.cache.marked_old;
  };
  EXPECT_GE(churn(tsc), churn(tcc));

  auto cfg_cc = small_config(ProtocolKind::kTimedCausal, SimTime::infinity(), 19);
  cfg_cc.workload.horizon = ms(400);
  const auto cc = run_experiment(cfg_cc);
  EXPECT_GE(churn(tcc), churn(cc));
}

// --- Protocol -> checker integration ---------------------------------------

class ProtocolCheckerIntegration
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProtocolCheckerIntegration, SerialRunsReadOnTime) {
  // A short TSC run must produce a history whose reads are all on time at
  // Delta + messaging slack (Definition 1 with the protocol's real-time
  // budget). This ties the implementation back to the formal model.
  ExperimentConfig config =
      small_config(ProtocolKind::kTimedSerial, ms(4), GetParam());
  config.workload.horizon = ms(60);
  config.workload.mean_think_time = ms(4);
  const auto result = run_experiment(config);
  const SimTime slack = config.max_latency * 4;
  const auto timing =
      reads_on_time(result.history, TimedSpecPerfect{config.delta + slack});
  EXPECT_TRUE(timing.all_on_time) << "late reads: " << timing.late_reads.size();
}

TEST_P(ProtocolCheckerIntegration, CausalRunsPassCcFastChecks) {
  ExperimentConfig config =
      small_config(ProtocolKind::kTimedCausal, ms(4), GetParam());
  config.workload.horizon = ms(60);
  const auto result = run_experiment(config);
  const CausalOrder co = CausalOrder::build(result.history);
  EXPECT_TRUE(passes_cc_fast_checks(result.history, co));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolCheckerIntegration,
                         ::testing::Values(31, 32, 33, 34, 35));

}  // namespace
}  // namespace timedc
