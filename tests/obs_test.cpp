// Tests for the observability layer: histogram bucket math, metrics
// registry JSON, tracer canonical ordering / capping / gating, exporter
// round-trips, and the two end-to-end properties the layer exists for —
// trace determinism across thread counts and the Definition-1 staleness
// bound on a fault-free lifetime-cache run.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/timed.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "protocol/experiment.hpp"

namespace timedc {
namespace {

TEST(Histogram, BucketBoundariesAreUpperInclusive) {
  const Histogram h = Histogram::time_us();
  const auto& bounds = h.bounds();
  ASSERT_FALSE(bounds.empty());
  EXPECT_EQ(bounds.front(), 0);
  EXPECT_EQ(bounds.back(), 10000000);

  // Bucket i counts bounds[i-1] < v <= bounds[i].
  EXPECT_EQ(h.bucket_index(0), 0u);
  EXPECT_EQ(h.bucket_index(1), 1u);
  EXPECT_EQ(h.bucket_index(2), 2u);
  EXPECT_EQ(h.bucket_index(3), 3u);  // 2 < 3 <= 5
  EXPECT_EQ(h.bucket_index(5), 3u);  // on the bound -> that bucket
  EXPECT_EQ(h.bucket_index(6), 4u);
  EXPECT_EQ(h.bucket_index(10000000), bounds.size() - 1);
  EXPECT_EQ(h.bucket_index(10000001), bounds.size());  // overflow
}

TEST(Histogram, RecordAndSummaries) {
  Histogram h({10, 100, 1000});
  EXPECT_EQ(h.min(), 0);  // empty histogram reports 0, not INT64_MAX
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);

  h.record(10);
  h.record(11);
  h.record(5000);  // overflow bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 5021);
  EXPECT_EQ(h.min(), 10);
  EXPECT_EQ(h.max(), 5000);
  ASSERT_EQ(h.counts().size(), 4u);
  EXPECT_EQ(h.counts()[0], 1u);  // v = 10
  EXPECT_EQ(h.counts()[1], 1u);  // v = 11
  EXPECT_EQ(h.counts()[2], 0u);
  EXPECT_EQ(h.counts()[3], 1u);  // overflow
}

TEST(Histogram, MergeAddsBucketsAndSummaries) {
  Histogram a({10, 100});
  Histogram b({10, 100});
  a.record(5);
  b.record(50);
  b.record(7000);
  a += b;
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 5);
  EXPECT_EQ(a.max(), 7000);
  EXPECT_EQ(a.counts()[0], 1u);
  EXPECT_EQ(a.counts()[1], 1u);
  EXPECT_EQ(a.counts()[2], 1u);
}

TEST(Histogram, PercentilesInterpolateAndClampToRecordedRange) {
  Histogram h({10, 100, 1000});
  EXPECT_EQ(h.percentile(0.5), 0);  // empty -> 0, like min()/max()

  for (int i = 1; i <= 100; ++i) h.record(i * 10);  // 10, 20, ... 1000
  const std::int64_t p50 = h.p50();
  const std::int64_t p95 = h.p95();
  const std::int64_t p99 = h.p99();
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, h.max());
  EXPECT_GE(p50, h.min());
  // Interpolated within the (100, 1000] bucket, which holds ranks 10..100.
  EXPECT_GT(p50, 100);
  EXPECT_LT(p50, 1000);
  EXPECT_GT(p99, 500);

  // A single sample: every quantile IS that sample (clamping, not bucket
  // midpoints).
  Histogram one({10, 100, 1000});
  one.record(42);
  EXPECT_EQ(one.p50(), 42);
  EXPECT_EQ(one.p99(), 42);

  // Overflow-bucket samples clamp to the recorded max, never the bound.
  Histogram over({10});
  over.record(5000);
  EXPECT_EQ(over.p99(), 5000);
}

TEST(Histogram, JsonCarriesPercentileSummaries) {
  Histogram h({10, 100});
  for (int i = 0; i < 50; ++i) h.record(7);
  const std::string json = h.to_json();
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p95\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  EXPECT_LT(json.find("\"p50\""), json.find("\"buckets\""));
}

TEST(MetricsRegistry, PrometheusExpositionFormat) {
  MetricsRegistry reg;
  reg.set_counter("net.frames_sent", 12);
  reg.set_gauge("sync.eps_us", 250.5);
  Histogram h({10, 100});
  h.record(5);
  h.record(50);
  h.record(5000);
  reg.add_histogram("latency_us", h);

  const std::string text = reg.to_prometheus();
  // Names are sanitized to [a-zA-Z0-9_:].
  EXPECT_NE(text.find("net_frames_sent 12"), std::string::npos);
  EXPECT_NE(text.find("sync_eps_us 250.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE net_frames_sent counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE sync_eps_us gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE latency_us histogram"), std::string::npos);
  // Cumulative buckets: le="10" counts 1, le="100" counts 2, +Inf counts 3.
  EXPECT_NE(text.find("latency_us_bucket{le=\"10\"} 1"), std::string::npos);
  EXPECT_NE(text.find("latency_us_bucket{le=\"100\"} 2"), std::string::npos);
  EXPECT_NE(text.find("latency_us_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("latency_us_sum 5055"), std::string::npos);
  EXPECT_NE(text.find("latency_us_count 3"), std::string::npos);
  // Exposition format 0.0.4 requires the trailing newline.
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
}

TEST(MetricsRegistry, JsonHasAllSectionsInInsertionOrder) {
  MetricsRegistry reg;
  reg.set_counter("zebra", 1);
  reg.add_counter("apple", 2);
  reg.add_counter("apple", 3);
  reg.set_gauge("ratio", 0.5);
  Histogram h({10});
  h.record(4);
  reg.add_histogram("lat_us", h);

  EXPECT_EQ(reg.counter("apple"), 5u);
  EXPECT_EQ(reg.counter("missing"), 0u);
  ASSERT_NE(reg.histogram("lat_us"), nullptr);
  EXPECT_EQ(reg.histogram("lat_us")->count(), 1u);

  const std::string json = reg.to_json();
  // Insertion order preserved: zebra before apple.
  EXPECT_LT(json.find("\"zebra\""), json.find("\"apple\""));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(Tracer, FlushSortsByTimeThenSitePreservingEmissionOrder) {
  Tracer t;
  const SimTime t1 = SimTime::micros(10);
  const SimTime t2 = SimTime::micros(20);
  // Emitted out of time order, across two sites, with a same-(t,site) pair.
  t.emit(TraceEventType::kNetSend, t2, SiteId{1});
  t.emit(TraceEventType::kNetSend, t1, SiteId{1});
  t.emit(TraceEventType::kNetDeliver, t1, SiteId{1});  // tie with previous
  t.emit(TraceEventType::kNetSend, t1, SiteId{0});

  const auto events = t.flush();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].site, SiteId{0});
  EXPECT_EQ(events[0].at, t1);
  EXPECT_EQ(events[1].site, SiteId{1});
  EXPECT_EQ(events[1].type, TraceEventType::kNetSend);  // emission order kept
  EXPECT_EQ(events[2].type, TraceEventType::kNetDeliver);
  EXPECT_EQ(events[3].at, t2);
  // flush is idempotent.
  EXPECT_EQ(t.flush(), events);
}

TEST(Tracer, AdoptedBlocksPrecedeOwnLanesInAdoptionOrder) {
  Tracer sub1;
  sub1.emit(TraceEventType::kCheckEnter, SimTime::zero(), SiteId{0}, kNoObject,
            0, 7, 0);
  Tracer sub2;
  sub2.emit(TraceEventType::kCheckEnter, SimTime::zero(), SiteId{0}, kNoObject,
            0, 8, 0);

  Tracer main;
  main.emit(TraceEventType::kNetSend, SimTime::zero(), SiteId{0});
  main.append_flushed(sub1.flush());
  main.append_flushed(sub2.flush());

  const auto events = main.flush();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].a, 7);  // adopted blocks first, in adoption order
  EXPECT_EQ(events[1].a, 8);
  EXPECT_EQ(events[2].type, TraceEventType::kNetSend);
  EXPECT_EQ(main.size(), 3u);
}

TEST(Tracer, CapCountsDroppedEvents) {
  TraceConfig cfg;
  cfg.enabled = true;
  cfg.max_events = 2;
  Tracer t(cfg);
  for (int i = 0; i < 5; ++i) {
    t.emit(TraceEventType::kNetSend, SimTime::micros(i), SiteId{0});
  }
  EXPECT_EQ(t.flush().size(), 2u);
  EXPECT_EQ(t.dropped(), 3u);
}

TEST(Tracer, CategoryMaskGatesEmission) {
  TraceConfig cfg;
  cfg.enabled = true;
  cfg.categories = static_cast<std::uint32_t>(TraceCategory::kNetwork);
  Tracer t(cfg);
  t.emit(TraceEventType::kCacheHit, SimTime::zero(), SiteId{0});  // gated out
  t.emit(TraceEventType::kNetSend, SimTime::zero(), SiteId{0});
  const auto events = t.flush();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, TraceEventType::kNetSend);
  EXPECT_EQ(t.dropped(), 0u);  // gated != dropped
}

TEST(TraceExport, JsonlRoundTripsExactly) {
  Tracer t;
  t.emit(TraceEventType::kOpIssue, SimTime::micros(5), SiteId{2}, ObjectId{9},
         17, 1, 0);
  t.emit(TraceEventType::kCheckVerdict, SimTime::zero(), SiteId{0}, kNoObject,
         2, 1, 42);
  t.emit(TraceEventType::kNetDrop, SimTime::micros(99), SiteId{3}, ObjectId{1},
         0, 4, -12);
  const auto events = t.flush();

  const std::string jsonl = trace_to_jsonl(events);
  const auto parsed = parse_trace_jsonl(jsonl);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, events);
}

TEST(TraceExport, JsonlParserRejectsUnknownTypeWithLineNumber) {
  const std::string good =
      "{\"t\":0,\"type\":\"net.send\",\"site\":0,\"obj\":-1,\"op\":0,\"a\":0,"
      "\"b\":0}\n";
  const std::string bad =
      "{\"t\":0,\"type\":\"bogus.event\",\"site\":0,\"obj\":-1,\"op\":0,"
      "\"a\":0,\"b\":0}\n";
  std::size_t line = 0;
  EXPECT_FALSE(parse_trace_jsonl(good + bad, &line).has_value());
  EXPECT_EQ(line, 2u);
}

ExperimentConfig small_traced_config() {
  ExperimentConfig config;
  config.kind = ProtocolKind::kTimedSerial;
  config.delta = SimTime::millis(25);
  config.workload.num_clients = 3;
  config.workload.num_objects = 8;
  config.workload.horizon = SimTime::millis(300);
  config.workload.mean_think_time = SimTime::millis(5);
  config.trace.enabled = true;
  return config;
}

TEST(TraceExport, ChromeExportBalancesSpansAndLoads) {
  ExperimentConfig config = small_traced_config();
  config.seed = 7;
  const ExperimentResult result = run_experiment(config);
  ASSERT_FALSE(result.trace.empty());

  const std::string chrome = trace_to_chrome(result.trace);
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"displayTimeUnit\""), std::string::npos);

  auto count = [&chrome](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = chrome.find(needle); pos != std::string::npos;
         pos = chrome.find(needle, pos + needle.size())) {
      ++n;
    }
    return n;
  };
  const std::size_t begins = count("\"ph\":\"B\"");
  const std::size_t ends = count("\"ph\":\"E\"");
  EXPECT_GT(begins, 0u);
  EXPECT_EQ(begins, ends);
}

TEST(TraceDeterminism, SeedFanOutIsByteIdenticalAcrossThreadCounts) {
  const ExperimentConfig config = small_traced_config();
  const std::vector<std::uint64_t> seeds = {11, 12, 13, 14, 15, 16};

  auto serialize = [](const std::vector<ExperimentResult>& results) {
    std::string all;
    for (const ExperimentResult& r : results) all += trace_to_jsonl(r.trace);
    return all;
  };
  const std::string serial = serialize(run_experiment_seeds(config, seeds, 1));
  const std::string two = serialize(run_experiment_seeds(config, seeds, 2));
  const std::string eight = serialize(run_experiment_seeds(config, seeds, 8));

  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, two);
  EXPECT_EQ(serial, eight);
}

TEST(TraceDeterminism, OpIssueCountMatchesOperations) {
  ExperimentConfig config = small_traced_config();
  config.seed = 21;
  const ExperimentResult result = run_experiment(config);
  std::uint64_t issues = 0;
  for (const TraceEvent& e : result.trace) {
    issues += e.type == TraceEventType::kOpIssue;
  }
  EXPECT_EQ(issues, result.operations);
}

// The property the timed-serial ("lifetime") cache guarantees: with no
// faults and no clock skew, every read's Definition-1 staleness is within
// the configured Delta, both in the oracle histogram and in the recorded
// history via per_read_staleness.
TEST(StalenessProperty, FaultFreeLifetimeCacheStaysWithinDelta) {
  ExperimentConfig config = small_traced_config();
  config.seed = 33;
  config.lease = SimTime::millis(5);
  const ExperimentResult result = run_experiment(config);
  ASSERT_GT(result.operations, 0u);

  EXPECT_EQ(result.reads_late, 0u);
  EXPECT_LE(result.max_staleness, config.delta);
  for (const ReadStaleness& rs : per_read_staleness(result.history)) {
    EXPECT_LE(rs.staleness, config.delta)
        << "read " << rs.read.value << " is stale beyond Delta";
  }

  const MetricsRegistry reg = experiment_metrics(config, result);
  EXPECT_EQ(reg.counter("operations"), result.operations);
  ASSERT_NE(reg.histogram("staleness_us"), nullptr);
  ASSERT_NE(reg.histogram("visibility_latency_us"), nullptr);
  EXPECT_GT(reg.histogram("visibility_latency_us")->count(), 0u);
  EXPECT_EQ(reg.histogram("staleness_us")->count(),
            result.staleness_us.count());
}

}  // namespace
}  // namespace timedc
