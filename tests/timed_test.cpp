// Tests for the reading-on-time machinery: Definitions 1 (perfect clocks),
// 2 (eps-synchronized clocks) and 6 (logical clocks through a xi map),
// exercised on the scenarios of Figures 2 and 3 plus edge cases.
#include <gtest/gtest.h>

#include "core/history_gen.hpp"
#include "core/paper_figures.hpp"
#include "core/timed.hpp"

namespace timedc {
namespace {

constexpr SiteId kS0{0}, kS1{1};
constexpr ObjectId kX{23};
SimTime us(std::int64_t n) { return SimTime::micros(n); }

TEST(Figure2Test, WrContainsExactlyW2AndW3UnderDefinition1) {
  const History h = figure2();
  const Figure2Ops ops = figure2_ops();
  const auto result =
      reads_on_time(h, TimedSpecPerfect{kFigure2Delta});
  ASSERT_FALSE(result.all_on_time);
  ASSERT_EQ(result.late_reads.size(), 1u);
  const LateRead& lr = result.late_reads[0];
  EXPECT_EQ(lr.read, ops.r);
  ASSERT_TRUE(lr.source.has_value());
  EXPECT_EQ(*lr.source, ops.w);
  ASSERT_EQ(lr.w_r.size(), 2u);
  EXPECT_EQ(lr.w_r[0], ops.w2);
  EXPECT_EQ(lr.w_r[1], ops.w3);
}

TEST(Figure3Test, WrEmptyUnderDefinition2WithEps) {
  const History h = figure2();
  const auto result =
      reads_on_time(h, TimedSpecEpsilon{kFigure2Delta, kFigure3Eps});
  EXPECT_TRUE(result.all_on_time);
}

TEST(Figure3Test, EpsZeroReducesToDefinition1) {
  const History h = figure2();
  const auto def1 = reads_on_time(h, TimedSpecPerfect{kFigure2Delta});
  const auto def2 =
      reads_on_time(h, TimedSpecEpsilon{kFigure2Delta, SimTime::zero()});
  EXPECT_EQ(def1.all_on_time, def2.all_on_time);
  ASSERT_EQ(def1.late_reads.size(), def2.late_reads.size());
  EXPECT_EQ(def1.late_reads[0].w_r, def2.late_reads[0].w_r);
}

TEST(Figure3Test, IntermediateEpsRemovesOnlyBoundaryWrites) {
  // With eps = 25: w2@80 vs w@50 -> 50+25 < 80 still "definitely newer";
  // w3@110 vs T(r)-Delta = 140 -> 110+25 < 140 still "definitely stale";
  // so W_r is unchanged. Only at eps >= 30 do both collapse.
  const History h = figure2();
  const auto at25 =
      reads_on_time(h, TimedSpecEpsilon{kFigure2Delta, us(25)});
  EXPECT_FALSE(at25.all_on_time);
  EXPECT_EQ(at25.late_reads[0].w_r.size(), 2u);
  const auto at30 =
      reads_on_time(h, TimedSpecEpsilon{kFigure2Delta, us(30)});
  EXPECT_TRUE(at30.all_on_time);
}

TEST(TimedTest, InitialValueReadInterferesWithAnyOldWrite) {
  HistoryBuilder b(2);
  b.write(kS0, kX, Value{1}, us(10));
  b.read(kS1, kX, Value{0}, us(200));  // stale initial-value read
  const History h = b.build();
  EXPECT_FALSE(reads_on_time(h, TimedSpecPerfect{us(100)}).all_on_time);
  EXPECT_TRUE(reads_on_time(h, TimedSpecPerfect{us(190)}).all_on_time);
}

TEST(TimedTest, DeltaInfinityAlwaysOnTime) {
  HistoryBuilder b(2);
  b.write(kS0, kX, Value{1}, us(10));
  b.write(kS0, kX, Value{2}, us(20));
  b.read(kS1, kX, Value{1}, us(1000000));
  const History h = b.build();
  EXPECT_TRUE(
      reads_on_time(h, TimedSpecPerfect{SimTime::infinity()}).all_on_time);
}

TEST(TimedTest, ReadingLatestWriteIsAlwaysOnTime) {
  HistoryBuilder b(2);
  b.write(kS0, kX, Value{1}, us(10));
  b.write(kS0, kX, Value{2}, us(20));
  b.read(kS1, kX, Value{2}, us(5000));
  const History h = b.build();
  EXPECT_TRUE(reads_on_time(h, TimedSpecPerfect{SimTime::zero()}).all_on_time);
}

TEST(TimedTest, MinTimedDeltaMatchesGapSpectrum) {
  const History h = figure2();
  // r@200 reads w@50; newer writes: w2@80 (gap 120), w3@110 (gap 90),
  // w4@170 (gap 30). Spectrum sorted descending; min delta = 120.
  const auto gaps = staleness_gaps(h);
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_EQ(gaps[0], us(120));
  EXPECT_EQ(gaps[1], us(90));
  EXPECT_EQ(gaps[2], us(30));
  EXPECT_EQ(min_timed_delta(h), us(120));
  EXPECT_TRUE(reads_on_time(h, TimedSpecPerfect{us(120)}).all_on_time);
  EXPECT_FALSE(reads_on_time(h, TimedSpecPerfect{us(119)}).all_on_time);
}

TEST(TimedTest, MinTimedDeltaWithEpsShrinks) {
  const History h = figure2();
  EXPECT_EQ(min_timed_delta(h, us(20)), us(100));  // 120 - 20
}

TEST(TimedTest, InterferenceSetHelper) {
  const History h = figure2();
  const Figure2Ops ops = figure2_ops();
  const auto wr = interference_set(h, ops.r, kFigure2Delta, SimTime::zero());
  EXPECT_EQ(wr.size(), 2u);
  const auto none = interference_set(h, ops.r, us(200), SimTime::zero());
  EXPECT_TRUE(none.empty());
}

// --- Definition 6: logical clocks + xi -------------------------------------

TEST(XiTimedTest, LargeXiDeltaAcceptsSmallRejects) {
  Rng rng(55);
  ReplicaHistoryParams p;
  p.num_ops = 30;
  p.max_delay_micros = 200;
  const History h = annotate_logical_times(replica_history(p, rng));
  const SumXiMap sum;
  // At an enormous xi threshold every read is on time.
  EXPECT_TRUE(
      reads_on_time(h, TimedSpecXi{&sum, 1e9}).all_on_time);
}

TEST(XiTimedTest, XiMonotoneInDelta) {
  Rng rng(56);
  ReplicaHistoryParams p;
  p.num_ops = 40;
  p.max_delay_micros = 300;
  const History h = annotate_logical_times(replica_history(p, rng));
  const SumXiMap sum;
  bool prev = reads_on_time(h, TimedSpecXi{&sum, 0.0}).all_on_time;
  for (double delta : {2.0, 5.0, 10.0, 20.0, 50.0}) {
    const bool now = reads_on_time(h, TimedSpecXi{&sum, delta}).all_on_time;
    if (prev) { EXPECT_TRUE(now) << "xi-timeliness must be monotone in delta"; }
    prev = now;
  }
}

TEST(XiTimedTest, StaleReadCaughtByXi) {
  // Site 0 writes twice; site 1 reads the first value after "hearing" lots
  // of later activity: with the sum map, the read's xi lag exceeds 1.
  HistoryBuilder b(2);
  b.write(kS0, kX, Value{1}, us(10));   // L = <1,0>, xi = 1
  b.write(kS0, kX, Value{2}, us(20));   // L = <2,0>, xi = 2
  b.read(kS1, kX, Value{1}, us(30));    // merges <1,0> -> <1,1>, xi = 2
  const History h = annotate_logical_times(b.build());
  const SumXiMap sum;
  // Source xi = 1, interfering write xi = 2, read xi = 2.
  // W_r nonempty iff 2 < 2 - delta: never for delta >= 0 -> on time here.
  EXPECT_TRUE(reads_on_time(h, TimedSpecXi{&sum, 0.0}).all_on_time);
  // Push the read's known activity up: more site-1 events before the read.
  HistoryBuilder b2(2);
  b2.write(kS0, kX, Value{1}, us(10));
  b2.write(kS0, kX, Value{2}, us(20));
  b2.write(kS1, ObjectId{1}, Value{3}, us(21));
  b2.write(kS1, ObjectId{1}, Value{4}, us(22));
  b2.write(kS1, ObjectId{1}, Value{5}, us(23));
  b2.read(kS1, kX, Value{1}, us(30));  // xi(read) = 1 + 4 = 5... lag 3 vs w2
  const History h2 = annotate_logical_times(b2.build());
  EXPECT_FALSE(reads_on_time(h2, TimedSpecXi{&sum, 1.0}).all_on_time);
  EXPECT_TRUE(reads_on_time(h2, TimedSpecXi{&sum, 4.0}).all_on_time);
}

}  // namespace
}  // namespace timedc
