// Connection supervision over real sockets: learned-return-path purging on
// close (the killed-peer regression), reconnect with queued-frame flush,
// heartbeat liveness marking a black-holing peer DEAD, per-status decode
// error counters through the stats bridge, transmit-time client failover to
// a live replica, and the bounded per-peer frame queue's drop policy.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "clocks/physical_clock.hpp"
#include "net/event_loop.hpp"
#include "net/tcp_transport.hpp"
#include "obs/metrics.hpp"
#include "obs/stats_bridge.hpp"
#include "protocol/server.hpp"
#include "protocol/timed_serial_cache.hpp"

namespace timedc {
namespace {

template <typename F>
auto on_loop(net::EventLoop& loop, F fn) -> decltype(fn()) {
  std::promise<decltype(fn())> result;
  auto fut = result.get_future();
  loop.post([&] { result.set_value(fn()); });
  return fut.get();
}

/// Polls `pred` (evaluated on the loop thread) for up to ~10s.
template <typename F>
bool poll_loop(net::EventLoop& loop, F pred) {
  for (int spin = 0; spin < 2000; ++spin) {
    if (on_loop(loop, pred)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

/// A transport on its own loop thread, listening on an ephemeral port.
class NetNode {
 public:
  explicit NetNode(SimTime latency_bound = SimTime::millis(100))
      : transport_(loop_, latency_bound) {
    port_ = transport_.listen(0);
  }
  ~NetNode() {
    if (thread_.joinable()) stop();
  }

  void start() {
    thread_ = std::thread([this] { loop_.run(); });
  }
  void stop() {
    net::TcpTransport* t = &transport_;
    loop_.post([t] { t->close_all(); });
    loop_.stop();
    thread_.join();
  }

  net::EventLoop& loop() { return loop_; }
  net::TcpTransport& transport() { return transport_; }
  std::uint16_t port() const { return port_; }

 private:
  net::EventLoop loop_;
  net::TcpTransport transport_;
  std::thread thread_;
  std::uint16_t port_ = 0;
};

TEST(NetSupervision, LearnedReturnPathIsPurgedWhenPeerDies) {
  NetNode server;
  int server_got = 0;
  server.transport().register_site(
      SiteId{0}, [&](SiteId, const Message&) { ++server_got; });
  server.start();

  // A client connects, sends one frame, and the server learns that replies
  // to site 100 go down this connection.
  auto client = std::make_unique<NetNode>();
  client->transport().add_route(SiteId{0}, "127.0.0.1", server.port());
  client->start();
  on_loop(client->loop(), [&] {
    client->transport().send_message(SiteId{100}, SiteId{0},
                                     Message{FetchRequest{ObjectId{1}, SiteId{100}, 1}},
                                     64);
    return true;
  });
  ASSERT_TRUE(poll_loop(server.loop(), [&] { return server_got == 1; }));

  // Kill the client. The server must notice the close and purge the
  // learned path: a reply addressed to site 100 is now unroutable, not a
  // write into a dead connection object.
  client->stop();
  client.reset();
  ASSERT_TRUE(poll_loop(server.loop(), [&] {
    return server.transport().stats().connections_closed >= 1;
  }));
  const std::uint64_t unroutable = on_loop(server.loop(), [&] {
    server.transport().send_message(
        SiteId{0}, SiteId{100}, Message{FetchRequest{ObjectId{1}, SiteId{0}, 2}},
        64);
    return server.transport().stats().unroutable;
  });
  EXPECT_EQ(unroutable, 1u);
  server.stop();
}

TEST(NetSupervision, ReconnectAfterRefusalFlushesQueuedFrames) {
  // Reserve a port, then free it so the first dials are refused.
  std::uint16_t port = 0;
  {
    net::EventLoop tmp_loop;
    net::TcpTransport tmp(tmp_loop);
    port = tmp.listen(0);
  }

  NetNode client;
  client.transport().add_route(SiteId{0}, "127.0.0.1", port);
  net::SupervisionConfig sup;
  sup.enabled = true;
  sup.backoff_base = SimTime::millis(10);
  sup.backoff_cap = SimTime::millis(50);
  sup.dead_after_failures = 1000;  // never give up in this test
  sup.heartbeat_interval = SimTime::millis(50);
  client.transport().set_supervision(sup);
  client.start();

  constexpr int kFrames = 5;
  on_loop(client.loop(), [&] {
    for (int i = 0; i < kFrames; ++i) {
      client.transport().send_message(
          SiteId{100}, SiteId{0},
          Message{FetchRequest{ObjectId{1}, SiteId{100},
                               static_cast<std::uint64_t>(i + 1)}},
          64);
    }
    return true;
  });
  // Let a few refused dials accumulate before the server appears.
  ASSERT_TRUE(poll_loop(client.loop(), [&] {
    return client.transport().stats().reconnect_attempts >= 2;
  }));
  const net::ConnectionState mid = on_loop(client.loop(), [&] {
    return client.transport().connection_state(SiteId{0});
  });
  // Between refusals the peer is either waiting out a backoff or mid-dial.
  EXPECT_TRUE(mid == net::ConnectionState::kBackoff ||
              mid == net::ConnectionState::kConnecting)
      << to_cstring(mid);

  // The server comes up on the very same port: the next re-dial succeeds
  // and the queued frames flush in order.
  net::EventLoop server_loop;
  net::TcpTransport server_tx(server_loop);
  ASSERT_EQ(server_tx.listen(port), port);
  int server_got = 0;
  std::uint64_t last_request_id = 0;
  server_tx.register_site(SiteId{0}, [&](SiteId, const Message& m) {
    ++server_got;
    last_request_id = std::get<FetchRequest>(m).request_id;
  });
  std::thread server_thread([&] { server_loop.run(); });

  EXPECT_TRUE(poll_loop(server_loop, [&] { return server_got == kFrames; }));
  EXPECT_EQ(on_loop(server_loop, [&] { return last_request_id; }),
            static_cast<std::uint64_t>(kFrames));
  const net::TcpTransportStats stats =
      on_loop(client.loop(), [&] { return client.transport().stats(); });
  EXPECT_GE(stats.reconnects, 1u);
  EXPECT_EQ(stats.frames_queued, static_cast<std::uint64_t>(kFrames));
  EXPECT_EQ(stats.frames_requeued, static_cast<std::uint64_t>(kFrames));
  EXPECT_EQ(stats.frames_dropped_queue_full, 0u);
  EXPECT_EQ(on_loop(client.loop(), [&] {
    return client.transport().connection_state(SiteId{0});
  }), net::ConnectionState::kHealthy);

  net::TcpTransport* t = &server_tx;
  server_loop.post([t] { t->close_all(); });
  server_loop.stop();
  server_thread.join();
  client.stop();
}

TEST(NetSupervision, BlackholingPeerGoesDeadByLivenessExpiry) {
  // A listener whose backlog completes TCP handshakes but that never reads
  // or writes: connects "succeed", yet no frame ever arrives. Only the
  // heartbeat liveness deadline can unmask it.
  const int blackhole = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  ASSERT_GE(blackhole, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(blackhole, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_EQ(::listen(blackhole, 64), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(blackhole, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const std::uint16_t port = ntohs(addr.sin_port);

  NetNode client(SimTime::millis(5));  // liveness = 2*20ms + 2*5ms = 50ms
  client.transport().add_route(SiteId{0}, "127.0.0.1", port);
  net::SupervisionConfig sup;
  sup.enabled = true;
  sup.heartbeat_interval = SimTime::millis(20);
  sup.backoff_base = SimTime::millis(10);
  sup.backoff_cap = SimTime::millis(50);
  sup.dead_after_failures = 2;
  client.transport().set_supervision(sup);
  client.start();

  on_loop(client.loop(), [&] {
    client.transport().send_message(SiteId{100}, SiteId{0},
                                    Message{FetchRequest{ObjectId{1}, SiteId{100}, 1}},
                                    64);
    return true;
  });
  // DEAD peers are re-probed, so the state can oscillate: take state,
  // counters and reachability in one loop-thread snapshot.
  net::TcpTransportStats stats;
  bool reachable = true;
  ASSERT_TRUE(poll_loop(client.loop(), [&] {
    stats = client.transport().stats();
    reachable = client.transport().peer_reachable(SiteId{0});
    return client.transport().connection_state(SiteId{0}) ==
           net::ConnectionState::kDead;
  }));
  EXPECT_GE(stats.heartbeats_sent, 1u);
  EXPECT_GE(stats.liveness_expiries, 1u);
  EXPECT_GE(stats.peers_marked_dead, 1u);
  EXPECT_EQ(stats.peers_by_state[static_cast<int>(net::ConnectionState::kDead)],
            1u);
  EXPECT_FALSE(reachable);
  client.stop();
  ::close(blackhole);
}

TEST(NetSupervision, DecodeErrorsAreCountedByStatusAndPublished) {
  NetNode server;
  server.transport().register_site(SiteId{0}, [](SiteId, const Message&) {});
  server.start();

  // A raw socket speaking garbage: the first 16 bytes fail the magic check.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const char garbage[32] = "this is not a timedc frame!";
  ASSERT_EQ(::write(fd, garbage, sizeof(garbage)),
            static_cast<ssize_t>(sizeof(garbage)));

  ASSERT_TRUE(poll_loop(server.loop(), [&] {
    return server.transport().stats().decode_errors >= 1;
  }));
  const net::TcpTransportStats stats =
      on_loop(server.loop(), [&] { return server.transport().stats(); });
  EXPECT_EQ(stats.decode_errors, 1u);
  EXPECT_EQ(stats.decode_errors_by_status[static_cast<std::size_t>(
                wire::DecodeStatus::kBadMagic)],
            1u);

  // Through the stats bridge the failure shows up as a named counter.
  MetricsRegistry reg;
  publish_tcp_transport_stats(reg, "net", stats);
  EXPECT_EQ(reg.counter("net.decode_error.bad-magic"), 1u);
  EXPECT_EQ(reg.counter("net.decode_error.bad-version"), 0u);

  ::close(fd);
  server.stop();
}

TEST(StatsBridge, PublishesBatchingSteeringAndIntrospectionCounters) {
  // The serving-path counters the N-reactor stack added (steering, batched
  // flushes, syscall coalescing) and the introspection counters must all
  // survive the bridge into named metrics — a dropped field here silently
  // blinds timedc-top and the metrics dumps.
  net::TcpTransportStats stats;
  stats.connections_steered_out = 3;
  stats.connections_steered_in = 2;
  stats.batch_flushes = 1000;
  stats.flush_syscalls = 250;
  stats.frames_sent = 4000;
  stats.stats_requests_served = 7;
  stats.stats_replies_received = 5;

  MetricsRegistry reg;
  publish_tcp_transport_stats(reg, "net", stats);
  EXPECT_EQ(reg.counter("net.connections_steered_out"), 3u);
  EXPECT_EQ(reg.counter("net.connections_steered_in"), 2u);
  EXPECT_EQ(reg.counter("net.batch_flushes"), 1000u);
  EXPECT_EQ(reg.counter("net.flush_syscalls"), 250u);
  EXPECT_EQ(reg.counter("net.frames_sent"), 4000u);
  EXPECT_EQ(reg.counter("net.stats_requests_served"), 7u);
  EXPECT_EQ(reg.counter("net.stats_replies_received"), 5u);

  // Aggregation contract: publishing a second transport's stats adds.
  publish_tcp_transport_stats(reg, "net", stats);
  EXPECT_EQ(reg.counter("net.connections_steered_out"), 6u);
  EXPECT_EQ(reg.counter("net.batch_flushes"), 2000u);
}

TEST(NetSupervision, ClientFailsOverToReplicaWhenPrimaryIsDead) {
  // Replica server on site 1 (single-server mode: it owns every object).
  net::EventLoop replica_loop;
  net::TcpTransport replica_tx(replica_loop);
  const std::uint16_t replica_port = replica_tx.listen(0);
  ObjectServer replica(replica_tx, SiteId{1}, 4, PushPolicy::kNone,
                       MessageSizes{});
  replica.attach();
  std::thread replica_thread([&] { replica_loop.run(); });

  // The primary (site 0) is a dead port: reserve one, then free it.
  std::uint16_t dead_port = 0;
  {
    net::EventLoop tmp_loop;
    net::TcpTransport tmp(tmp_loop);
    dead_port = tmp.listen(0);
  }

  net::EventLoop loop;
  net::TcpTransport tx(loop, SimTime::millis(50));
  tx.add_route(SiteId{0}, "127.0.0.1", dead_port);
  tx.add_route(SiteId{1}, "127.0.0.1", replica_port);
  net::SupervisionConfig sup;
  sup.enabled = true;
  sup.backoff_base = SimTime::millis(5);
  sup.backoff_cap = SimTime::millis(20);
  sup.dead_after_failures = 2;
  sup.heartbeat_interval = SimTime::millis(50);
  tx.set_supervision(sup);
  PerfectClock clock;
  TimedSerialCache client(tx, SiteId{100}, SiteId{0}, &clock,
                          SimTime::millis(20), /*mark_old=*/true,
                          MessageSizes{});
  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.base_timeout = SimTime::millis(50);
  client.configure_reliability(policy, {SiteId{0}, SiteId{1}}, 7);
  client.attach();

  Value got{-1};
  bool done = false;
  loop.post([&] {
    client.read(ObjectId{3}, [&](Value v, SimTime) {
      got = v;
      done = true;
      loop.stop();
    });
  });
  loop.run_after(SimTime::seconds(30), [&] { loop.stop(); });  // hang guard
  std::thread client_thread([&] { loop.run(); });
  client_thread.join();

  EXPECT_TRUE(done);
  EXPECT_EQ(got, Value{0});  // the replica's initial value, a real answer
  EXPECT_GE(client.stats().failovers, 1u);
  EXPECT_EQ(client.stats().ops_abandoned, 0u);
  // The dead primary is re-probed forever, so it may be mid-probe
  // (kConnecting) at shutdown — but it can never look healthy.
  EXPECT_NE(tx.connection_state(SiteId{0}), net::ConnectionState::kHealthy);

  net::TcpTransport* rt = &replica_tx;
  replica_loop.post([rt] { rt->close_all(); });
  replica_loop.stop();
  replica_thread.join();
}

TEST(NetSupervision, BoundedQueueDropsOldestWhenFull) {
  std::uint16_t dead_port = 0;
  {
    net::EventLoop tmp_loop;
    net::TcpTransport tmp(tmp_loop);
    dead_port = tmp.listen(0);
  }

  NetNode client;
  client.transport().add_route(SiteId{9}, "127.0.0.1", dead_port);
  net::SupervisionConfig sup;
  sup.enabled = true;
  sup.max_queued_frames = 3;
  sup.dead_after_failures = 1000;
  sup.backoff_base = SimTime::millis(50);
  client.transport().set_supervision(sup);
  client.start();

  constexpr int kSends = 8;
  const net::TcpTransportStats stats = on_loop(client.loop(), [&] {
    for (int i = 0; i < kSends; ++i) {
      client.transport().send_message(
          SiteId{100}, SiteId{9},
          Message{FetchRequest{ObjectId{1}, SiteId{100},
                               static_cast<std::uint64_t>(i + 1)}},
          64);
    }
    return client.transport().stats();
  });
  EXPECT_EQ(stats.frames_queued, static_cast<std::uint64_t>(kSends));
  EXPECT_EQ(stats.frames_dropped_queue_full,
            static_cast<std::uint64_t>(kSends - 3));
  client.stop();
}

}  // namespace
}  // namespace timedc
