// Property tests for the binary wire codec (net/wire.hpp).
//
// Round-trip: random instances of every wire message encode and decode
// bit-identically (the re-encoded bytes equal the original bytes, not just
// message equality). Robustness: every truncation of a valid frame is
// kNeedMore, corrupted headers and length fields map to their typed
// DecodeStatus, and random byte flips / garbage buffers never crash or
// over-read — this binary is the ASan/UBSan target of the net-loopback CI
// job.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "net/wire.hpp"

namespace timedc {
namespace {

PlausibleTimestamp random_timestamp(Rng& rng) {
  const std::size_t n = static_cast<std::size_t>(rng.uniform_int(0, 6));
  std::vector<std::uint64_t> entries(n);
  for (auto& e : entries) e = rng.next_u64() >> 16;
  return PlausibleTimestamp(std::move(entries),
                            SiteId{static_cast<std::uint32_t>(
                                rng.uniform_int(0, 1 << 20))});
}

SimTime random_time(Rng& rng) {
  if (rng.uniform_int(0, 15) == 0) return SimTime::infinity();
  return SimTime::micros(rng.uniform_int(-1000, 1'000'000'000));
}

ObjectCopy random_copy(Rng& rng) {
  ObjectCopy copy;
  copy.object = ObjectId{static_cast<std::uint32_t>(rng.uniform_int(0, 999))};
  copy.value = Value{static_cast<std::int64_t>(rng.next_u64())};
  copy.version = rng.next_u64();
  copy.alpha = random_time(rng);
  copy.omega = random_time(rng);
  copy.beta = random_time(rng);
  copy.alpha_l = random_timestamp(rng);
  copy.omega_l = random_timestamp(rng);
  return copy;
}

SiteId random_site(Rng& rng) {
  return SiteId{static_cast<std::uint32_t>(rng.next_u64())};
}

std::uint64_t random_rid(Rng& rng) { return rng.next_u64(); }

/// One random instance of the wire message with the given type index 0..7.
Message random_message(Rng& rng, int type) {
  switch (type) {
    case 0:
      return FetchRequest{ObjectId{7}, random_site(rng), random_rid(rng)};
    case 1:
      return FetchReply{random_copy(rng), random_rid(rng)};
    case 2:
      return WriteRequest{ObjectId{11},         Value{rng.uniform_int(1, 1 << 30)},
                          random_time(rng),     random_timestamp(rng),
                          random_site(rng),     random_rid(rng)};
    case 3:
      return WriteAck{ObjectId{3}, rng.next_u64(), random_rid(rng)};
    case 4:
      return ValidateRequest{ObjectId{5}, rng.next_u64(), random_site(rng),
                             random_rid(rng)};
    case 5:
      return ValidateReply{ObjectId{5}, rng.bernoulli(0.5), random_copy(rng),
                           random_rid(rng)};
    case 6:
      return Invalidate{ObjectId{9}, rng.next_u64()};
    default:
      return PushUpdate{random_copy(rng)};
  }
}

constexpr int kNumTypes = 8;

std::vector<std::uint8_t> encode(SiteId from, SiteId to, const Message& m) {
  std::vector<std::uint8_t> buf;
  wire::encode_frame(from, to, m, buf);
  return buf;
}

TEST(WireCodec, RoundTripsEveryMessageTypeBitIdentically) {
  Rng rng(20260805);
  for (int iter = 0; iter < 200; ++iter) {
    for (int type = 0; type < kNumTypes; ++type) {
      const Message m = random_message(rng, type);
      const SiteId from{static_cast<std::uint32_t>(rng.uniform_int(0, 5000))};
      const SiteId to{static_cast<std::uint32_t>(rng.uniform_int(0, 5000))};
      const std::vector<std::uint8_t> buf = encode(from, to, m);
      ASSERT_EQ(buf.size(), wire::encoded_frame_size(m));

      wire::DecodedFrame frame = wire::decode_frame(buf);
      ASSERT_TRUE(frame.ok()) << wire::to_cstring(frame.status);
      EXPECT_EQ(frame.consumed, buf.size());
      EXPECT_EQ(frame.from, from);
      EXPECT_EQ(frame.to, to);
      ASSERT_EQ(frame.message.index(), static_cast<std::size_t>(type));
      EXPECT_EQ(frame.message, m);

      // Bit-identical: re-encoding the decoded message reproduces the bytes.
      EXPECT_EQ(encode(frame.from, frame.to, frame.message), buf);
    }
  }
}

TEST(WireCodec, DecodesBackToBackFramesFromOneBuffer) {
  Rng rng(7);
  const Message a = random_message(rng, 1);
  const Message b = random_message(rng, 7);
  std::vector<std::uint8_t> buf = encode(SiteId{1}, SiteId{2}, a);
  const std::size_t first = buf.size();
  wire::encode_frame(SiteId{3}, SiteId{4}, b, buf);

  wire::DecodedFrame f1 = wire::decode_frame(buf);
  ASSERT_TRUE(f1.ok());
  EXPECT_EQ(f1.consumed, first);
  EXPECT_EQ(f1.message, a);

  wire::DecodedFrame f2 = wire::decode_frame(
      std::span<const std::uint8_t>(buf).subspan(f1.consumed));
  ASSERT_TRUE(f2.ok());
  EXPECT_EQ(f2.message, b);
  EXPECT_EQ(f1.consumed + f2.consumed, buf.size());
}

TEST(WireCodec, EveryTruncationIsNeedMore) {
  Rng rng(11);
  for (int type = 0; type < kNumTypes; ++type) {
    const Message m = random_message(rng, type);
    const std::vector<std::uint8_t> buf = encode(SiteId{1}, SiteId{2}, m);
    for (std::size_t len = 0; len < buf.size(); ++len) {
      wire::DecodedFrame frame =
          wire::decode_frame(std::span<const std::uint8_t>(buf.data(), len));
      EXPECT_EQ(frame.status, wire::DecodeStatus::kNeedMore)
          << "type " << type << " truncated to " << len << " bytes: "
          << wire::to_cstring(frame.status);
      EXPECT_EQ(frame.consumed, 0u);
    }
  }
}

TEST(WireCodec, RejectsBadMagicVersionAndType) {
  Rng rng(13);
  std::vector<std::uint8_t> buf =
      encode(SiteId{1}, SiteId{2}, random_message(rng, 0));

  std::vector<std::uint8_t> bad = buf;
  bad[0] ^= 0xFF;  // magic low byte
  EXPECT_EQ(wire::decode_frame(bad).status, wire::DecodeStatus::kBadMagic);

  bad = buf;
  bad[2] = wire::kVersion + 1;
  EXPECT_EQ(wire::decode_frame(bad).status, wire::DecodeStatus::kBadVersion);
  bad[2] = wire::kMinVersion - 1;
  EXPECT_EQ(wire::decode_frame(bad).status, wire::DecodeStatus::kBadVersion);

  bad = buf;
  bad[3] = 0;  // below the MsgType range
  EXPECT_EQ(wire::decode_frame(bad).status, wire::DecodeStatus::kBadType);
  bad[3] = 21;  // above it (v6 ends at kRingUpdate = 20)
  EXPECT_EQ(wire::decode_frame(bad).status, wire::DecodeStatus::kBadType);
}

TEST(WireCodec, AcceptsVersionOneFramesButNotVersionOneHeartbeats) {
  // A v1 peer's protocol frames decode unchanged — field layouts are
  // identical across versions, only the legal MsgType range differs.
  Rng rng(31);
  for (int type = 0; type < kNumTypes; ++type) {
    const Message m = random_message(rng, type);
    std::vector<std::uint8_t> buf = encode(SiteId{1}, SiteId{2}, m);
    buf[2] = 1;
    const wire::DecodedFrame frame = wire::decode_frame(buf);
    ASSERT_TRUE(frame.ok()) << wire::to_cstring(frame.status);
    EXPECT_EQ(frame.message, m);
  }

  // kHeartbeat on a v1 header is malformed, not merely newer.
  std::vector<std::uint8_t> hb;
  wire::encode_heartbeat_frame(SiteId{1}, SiteId{2}, wire::Heartbeat{}, hb);
  hb[2] = 1;
  EXPECT_EQ(wire::decode_frame(hb).status, wire::DecodeStatus::kBadType);
}

TEST(WireCodec, TimeSyncRoundTrip) {
  for (const bool reply : {false, true}) {
    wire::TimeSync ts;
    ts.seq = 0x0102030405060708ull;
    ts.client_send_us = -123456789;
    ts.server_time_us = 987654321;
    ts.reply = reply;
    std::vector<std::uint8_t> buf;
    wire::encode_time_sync_frame(SiteId{7}, SiteId{3}, ts, buf);
    const wire::DecodedFrame frame = wire::decode_frame(buf);
    ASSERT_TRUE(frame.ok()) << wire::to_cstring(frame.status);
    ASSERT_TRUE(frame.is_time_sync);
    EXPECT_FALSE(frame.is_heartbeat);
    EXPECT_EQ(frame.from, SiteId{7});
    EXPECT_EQ(frame.to, SiteId{3});
    EXPECT_EQ(frame.time_sync.seq, ts.seq);
    EXPECT_EQ(frame.time_sync.client_send_us, ts.client_send_us);
    EXPECT_EQ(frame.time_sync.server_time_us, ts.server_time_us);
    EXPECT_EQ(frame.time_sync.reply, reply);
    EXPECT_EQ(frame.consumed, buf.size());
  }
}

TEST(WireCodec, TimeSyncRequiresVersionThree) {
  // A v2 peer never agreed to time-sync frames: type 10 under a v2 (or v1)
  // header is malformed, exactly like heartbeats under v1.
  std::vector<std::uint8_t> buf;
  wire::encode_time_sync_frame(SiteId{1}, SiteId{2}, wire::TimeSync{}, buf);
  for (const std::uint8_t version : {2, 1}) {
    std::vector<std::uint8_t> old = buf;
    old[2] = version;
    EXPECT_EQ(wire::decode_frame(old).status, wire::DecodeStatus::kBadType)
        << "version " << int(version);
  }
}

TEST(WireCodec, StatsRequestRoundTrip) {
  wire::StatsRequest rq;
  rq.seq = 0x0a0b0c0d0e0f1011ull;
  rq.target_site = 42;
  std::vector<std::uint8_t> buf;
  wire::encode_stats_request_frame(SiteId{9}, SiteId{4}, rq, buf);
  for (std::size_t len = 0; len < buf.size(); ++len) {
    EXPECT_EQ(wire::decode_frame(
                  std::span<const std::uint8_t>(buf.data(), len)).status,
              wire::DecodeStatus::kNeedMore);
  }
  const wire::DecodedFrame frame = wire::decode_frame(buf);
  ASSERT_TRUE(frame.ok()) << wire::to_cstring(frame.status);
  ASSERT_TRUE(frame.is_stats_request);
  EXPECT_FALSE(frame.is_stats_reply);
  EXPECT_EQ(frame.from, SiteId{9});
  EXPECT_EQ(frame.to, SiteId{4});
  EXPECT_EQ(frame.stats_request.seq, rq.seq);
  EXPECT_EQ(frame.stats_request.target_site, 42u);
  EXPECT_EQ(frame.consumed, buf.size());
}

TEST(WireCodec, StatsReplyRoundTrip) {
  const std::vector<StatsEntry> board_a = {{0, 100}, {3, -1}, {17, 999999}};
  const std::vector<StatsEntry> board_b = {{5, 7}};
  const std::vector<wire::StatsBoardSpan> boards = {
      {200, board_a}, {201, board_b}};
  std::vector<std::uint8_t> buf;
  wire::encode_stats_reply_frame(SiteId{4}, SiteId{9}, 77, boards, buf);

  const wire::DecodedFrame frame = wire::decode_frame(buf);
  ASSERT_TRUE(frame.ok()) << wire::to_cstring(frame.status);
  ASSERT_TRUE(frame.is_stats_reply);
  EXPECT_EQ(frame.stats_seq, 77u);
  EXPECT_EQ(frame.stats_boards, 2u);
  ASSERT_EQ(frame.stats_rows.size(), 4u);
  EXPECT_EQ(frame.stats_rows[0].site, 200u);
  EXPECT_EQ(frame.stats_rows[0].key, 0u);
  EXPECT_EQ(frame.stats_rows[0].value, 100);
  EXPECT_EQ(frame.stats_rows[1].value, -1);
  EXPECT_EQ(frame.stats_rows[2].value, 999999);
  EXPECT_EQ(frame.stats_rows[3].site, 201u);
  EXPECT_EQ(frame.stats_rows[3].key, 5u);
  EXPECT_EQ(frame.consumed, buf.size());

  // An empty reply (no boards: poller asked a bare process) still decodes.
  std::vector<std::uint8_t> empty;
  wire::encode_stats_reply_frame(SiteId{4}, SiteId{9}, 78, {}, empty);
  const wire::DecodedFrame e = wire::decode_frame(empty);
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(e.is_stats_reply);
  EXPECT_EQ(e.stats_boards, 0u);
  EXPECT_TRUE(e.stats_rows.empty());

  // Truncating anywhere inside the body is kShortBody via the reader (the
  // header's body_len still covers the missing bytes -> kNeedMore first;
  // shrink body_len to re-frame the truncation as a body error).
  std::vector<std::uint8_t> bad = buf;
  bad.resize(bad.size() - 4);
  std::uint32_t blen;
  std::memcpy(&blen, bad.data() + 12, sizeof(blen));
  blen -= 4;
  std::memcpy(bad.data() + 12, &blen, sizeof(blen));
  EXPECT_EQ(wire::decode_frame(bad).status, wire::DecodeStatus::kShortBody);
}

TEST(WireCodec, ForgedStatsCountsCannotForceAllocation) {
  // Body layout: seq u64, n_boards u32 at absolute offset 24, then per
  // board (site u32, n u32 at board_start + 4, entries).
  const std::vector<StatsEntry> entries = {{1, 2}};
  const std::vector<wire::StatsBoardSpan> boards = {{7, entries}};
  std::vector<std::uint8_t> buf;
  wire::encode_stats_reply_frame(SiteId{1}, SiteId{2}, 1, boards, buf);

  std::vector<std::uint8_t> bad = buf;
  const std::uint32_t huge = 0xFFFFFFFFu;
  std::memcpy(bad.data() + 24, &huge, sizeof(huge));  // n_boards
  EXPECT_EQ(wire::decode_frame(bad).status, wire::DecodeStatus::kBadField);

  bad = buf;
  std::memcpy(bad.data() + 32, &huge, sizeof(huge));  // first board's n
  EXPECT_EQ(wire::decode_frame(bad).status, wire::DecodeStatus::kBadField);

  // A plausible count without its entry bytes fails bounds, not allocates.
  bad = buf;
  const std::uint32_t plausible = 100;
  std::memcpy(bad.data() + 32, &plausible, sizeof(plausible));
  EXPECT_EQ(wire::decode_frame(bad).status, wire::DecodeStatus::kShortBody);
}

TEST(WireCodec, StatsRequiresVersionFour) {
  // A v3 (or older) peer never agreed to introspection frames: types 12/13
  // under an older header are malformed, exactly like time-sync under v2.
  std::vector<std::uint8_t> rq;
  wire::encode_stats_request_frame(SiteId{1}, SiteId{2}, wire::StatsRequest{},
                                   rq);
  std::vector<std::uint8_t> rp;
  wire::encode_stats_reply_frame(SiteId{1}, SiteId{2}, 1, {}, rp);
  for (const std::uint8_t version : {3, 2, 1}) {
    std::vector<std::uint8_t> old = rq;
    old[2] = version;
    EXPECT_EQ(wire::decode_frame(old).status, wire::DecodeStatus::kBadType)
        << "request, version " << int(version);
    old = rp;
    old[2] = version;
    EXPECT_EQ(wire::decode_frame(old).status, wire::DecodeStatus::kBadType)
        << "reply, version " << int(version);
  }
}

TEST(WireCodec, HeartbeatRoundTrip) {
  Rng rng(37);
  for (int iter = 0; iter < 200; ++iter) {
    wire::Heartbeat hb;
    hb.seq = rng.next_u64();
    hb.send_time_us = static_cast<std::int64_t>(rng.next_u64() >> 4);
    hb.reply = rng.bernoulli(0.5);
    const SiteId from{static_cast<std::uint32_t>(rng.uniform_int(0, 5000))};
    const SiteId to{static_cast<std::uint32_t>(rng.uniform_int(0, 5000))};

    std::vector<std::uint8_t> buf;
    wire::encode_heartbeat_frame(from, to, hb, buf);
    for (std::size_t len = 0; len < buf.size(); ++len) {
      EXPECT_EQ(wire::decode_frame(
                    std::span<const std::uint8_t>(buf.data(), len)).status,
                wire::DecodeStatus::kNeedMore);
    }

    const wire::DecodedFrame frame = wire::decode_frame(buf);
    ASSERT_TRUE(frame.ok()) << wire::to_cstring(frame.status);
    ASSERT_TRUE(frame.is_heartbeat);
    EXPECT_EQ(frame.consumed, buf.size());
    EXPECT_EQ(frame.from, from);
    EXPECT_EQ(frame.to, to);
    EXPECT_EQ(frame.heartbeat.seq, hb.seq);
    EXPECT_EQ(frame.heartbeat.send_time_us, hb.send_time_us);
    EXPECT_EQ(frame.heartbeat.reply, hb.reply);
  }

  // An illegal bool in the reply byte (absolute offset 16 + 16) is caught.
  std::vector<std::uint8_t> buf;
  wire::encode_heartbeat_frame(SiteId{1}, SiteId{2}, wire::Heartbeat{}, buf);
  buf[32] = 2;
  EXPECT_EQ(wire::decode_frame(buf).status, wire::DecodeStatus::kBadField);
}

// The body-length field lives at offset 12 (little-endian u32).
void set_body_len(std::vector<std::uint8_t>& buf, std::uint32_t len) {
  std::memcpy(buf.data() + 12, &len, sizeof(len));
}

std::uint32_t get_body_len(const std::vector<std::uint8_t>& buf) {
  std::uint32_t len;
  std::memcpy(&len, buf.data() + 12, sizeof(len));
  return len;
}

TEST(WireCodec, RejectsCorruptedLengthFields) {
  Rng rng(17);
  for (int type = 0; type < kNumTypes; ++type) {
    const std::vector<std::uint8_t> buf =
        encode(SiteId{1}, SiteId{2}, random_message(rng, type));
    const std::uint32_t body_len = get_body_len(buf);
    ASSERT_EQ(buf.size(), wire::kHeaderBytes + body_len);

    // A declared length over the cap is rejected before any body read.
    std::vector<std::uint8_t> bad = buf;
    set_body_len(bad, wire::kMaxBodyBytes + 1);
    EXPECT_EQ(wire::decode_frame(bad).status,
              wire::DecodeStatus::kOversizedBody);

    // Shrinking the declared length truncates the body under its fields.
    bad = buf;
    set_body_len(bad, body_len - 1);
    EXPECT_EQ(wire::decode_frame(bad).status, wire::DecodeStatus::kShortBody);

    // Growing it (with a pad byte present) leaves bytes the fields never
    // consume.
    bad = buf;
    bad.push_back(0);
    set_body_len(bad, body_len + 1);
    EXPECT_EQ(wire::decode_frame(bad).status,
              wire::DecodeStatus::kTrailingBytes);

    // Growing it past the buffer is just an incomplete frame.
    bad = buf;
    set_body_len(bad, body_len + 1);
    EXPECT_EQ(wire::decode_frame(bad).status, wire::DecodeStatus::kNeedMore);
  }
}

TEST(WireCodec, ForgedClockEntryCountCannotForceAllocation) {
  // PushUpdate body layout: 44 fixed ObjectCopy bytes, then alpha_l as
  // origin u32 + entry count u32 + entries. With empty timestamps the count
  // sits at absolute offset 16 + 44 + 4 = 64.
  ObjectCopy copy;
  copy.object = ObjectId{1};
  const std::vector<std::uint8_t> buf =
      encode(SiteId{1}, SiteId{2}, Message{PushUpdate{copy}});
  constexpr std::size_t kCountOffset = 64;

  std::vector<std::uint8_t> bad = buf;
  const std::uint32_t huge = 0xFFFFFFFFu;
  std::memcpy(bad.data() + kCountOffset, &huge, sizeof(huge));
  EXPECT_EQ(wire::decode_frame(bad).status,
            wire::DecodeStatus::kOversizedClock);

  // A count within the cap but without its entry bytes must fail the bounds
  // check, not allocate-then-read.
  bad = buf;
  const std::uint32_t plausible = 1000;
  std::memcpy(bad.data() + kCountOffset, &plausible, sizeof(plausible));
  EXPECT_EQ(wire::decode_frame(bad).status, wire::DecodeStatus::kShortBody);
}

TEST(WireCodec, RejectsIllegalBoolField) {
  // ValidateReply body: object u32, then still_valid at absolute offset 20.
  Rng rng(19);
  std::vector<std::uint8_t> buf =
      encode(SiteId{1}, SiteId{2}, random_message(rng, 5));
  buf[20] = 2;
  EXPECT_EQ(wire::decode_frame(buf).status, wire::DecodeStatus::kBadField);
}

std::vector<wire::MemberEntry> random_members(Rng& rng, std::size_t n) {
  std::vector<wire::MemberEntry> members(n);
  for (auto& m : members) {
    m.site = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 20));
    m.incarnation = rng.next_u64();
    m.status = static_cast<std::uint8_t>(rng.uniform_int(0, 2));
  }
  return members;
}

wire::SliceSyncRequest random_slice_sync(Rng& rng) {
  wire::SliceSyncRequest rq;
  rq.seq = rng.next_u64();
  rq.ring_epoch = rng.next_u64();
  rq.cursor = static_cast<std::uint32_t>(rng.next_u64());
  rq.max_records = static_cast<std::uint32_t>(
      rng.uniform_int(1, wire::kMaxSliceRecords));
  rq.if_newer_than_us = static_cast<std::int64_t>(rng.next_u64());
  return rq;
}

std::vector<wire::SliceRecord> random_slice_records(Rng& rng, std::size_t n) {
  std::vector<wire::SliceRecord> records(n);
  for (auto& r : records) {
    r.object = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 20));
    r.value = static_cast<std::int64_t>(rng.next_u64());
    r.version = rng.next_u64();
    r.alpha_us = static_cast<std::int64_t>(rng.next_u64());
    r.writer = static_cast<std::uint32_t>(rng.uniform_int(0, 5000));
    r.request_id = rng.next_u64();
  }
  return records;
}

std::vector<std::uint32_t> random_ring_members(Rng& rng, std::size_t n) {
  std::vector<std::uint32_t> members(n);
  for (auto& m : members) {
    m = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 20));
  }
  return members;
}

TEST(WireCodec, MembershipRoundTrip) {
  Rng rng(41);
  for (int iter = 0; iter < 100; ++iter) {
    const std::uint64_t epoch = rng.next_u64();
    const std::uint64_t ring_epoch = rng.next_u64();
    const std::vector<wire::MemberEntry> members = random_members(
        rng, static_cast<std::size_t>(
                 rng.uniform_int(0, wire::kMaxMembers)));
    const SiteId from{static_cast<std::uint32_t>(rng.uniform_int(0, 5000))};
    const SiteId to{static_cast<std::uint32_t>(rng.uniform_int(0, 5000))};

    std::vector<std::uint8_t> buf;
    wire::encode_membership_frame(from, to, epoch, ring_epoch, members, buf);
    for (std::size_t len = 0; len < buf.size(); len += 5) {
      EXPECT_EQ(wire::decode_frame(
                    std::span<const std::uint8_t>(buf.data(), len)).status,
                wire::DecodeStatus::kNeedMore);
    }

    const wire::DecodedFrame frame = wire::decode_frame(buf);
    ASSERT_TRUE(frame.ok()) << wire::to_cstring(frame.status);
    ASSERT_TRUE(frame.is_membership);
    EXPECT_EQ(frame.consumed, buf.size());
    EXPECT_EQ(frame.from, from);
    EXPECT_EQ(frame.to, to);
    EXPECT_EQ(frame.membership_epoch, epoch);
    EXPECT_EQ(frame.membership_ring_epoch, ring_epoch);
    ASSERT_EQ(frame.members.size(), members.size());
    for (std::size_t i = 0; i < members.size(); ++i) {
      EXPECT_EQ(frame.members[i], members[i]);
    }
  }
}

TEST(WireCodec, ForgedMemberCountCannotForceAllocation) {
  // v6 membership body: epoch u64, ring epoch u64, member count u32 at
  // absolute offset 32, then 13-byte entries (site u32, incarnation u64,
  // status u8).
  Rng rng(43);
  std::vector<std::uint8_t> buf;
  wire::encode_membership_frame(SiteId{1}, SiteId{2}, 9, 4,
                                random_members(rng, 3), buf);

  std::vector<std::uint8_t> bad = buf;
  const std::uint32_t huge = 0xFFFFFFFFu;
  std::memcpy(bad.data() + 32, &huge, sizeof(huge));
  EXPECT_EQ(wire::decode_frame(bad).status, wire::DecodeStatus::kBadField);

  // A count within kMaxMembers but past the actual bytes fails bounds.
  bad = buf;
  const std::uint32_t plausible = wire::kMaxMembers;
  std::memcpy(bad.data() + 32, &plausible, sizeof(plausible));
  EXPECT_EQ(wire::decode_frame(bad).status, wire::DecodeStatus::kShortBody);

  // An out-of-range liveness status (first entry's, offset 32+4+4+8) is
  // malformed, not clamped.
  bad = buf;
  bad[48] = 3;
  EXPECT_EQ(wire::decode_frame(bad).status, wire::DecodeStatus::kBadField);
}

TEST(WireCodec, ForwardRoundTripAndRawAgree) {
  Rng rng(47);
  for (int iter = 0; iter < 100; ++iter) {
    const int type = static_cast<int>(rng.uniform_int(0, kNumTypes - 1));
    const Message inner = random_message(rng, type);
    const SiteId client{static_cast<std::uint32_t>(rng.uniform_int(0, 5000))};
    const SiteId owner{static_cast<std::uint32_t>(rng.uniform_int(0, 8))};
    const auto hops = static_cast<std::uint8_t>(rng.uniform_int(0, 3));
    const bool serve_here = rng.bernoulli(0.3);
    const std::uint64_t ring_epoch = rng.next_u64();

    std::vector<std::uint8_t> buf;
    wire::encode_forward_frame(SiteId{3}, owner, hops, serve_here, ring_epoch,
                               client, owner, inner, buf);
    // The zero-decode path (wrap pre-encoded bytes) is bit-identical.
    std::vector<std::uint8_t> raw;
    wire::encode_forward_frame_raw(SiteId{3}, owner, hops, serve_here,
                                   ring_epoch, encode(client, owner, inner),
                                   raw);
    EXPECT_EQ(raw, buf);

    for (std::size_t len = 0; len < buf.size(); len += 7) {
      EXPECT_EQ(wire::decode_frame(
                    std::span<const std::uint8_t>(buf.data(), len)).status,
                wire::DecodeStatus::kNeedMore);
    }

    const wire::DecodedFrame frame = wire::decode_frame(buf);
    ASSERT_TRUE(frame.ok()) << wire::to_cstring(frame.status);
    ASSERT_TRUE(frame.is_forward);
    EXPECT_EQ(frame.consumed, buf.size());
    EXPECT_EQ(frame.forward_hops, hops);
    EXPECT_EQ(frame.forward_serve_here, serve_here);
    EXPECT_EQ(frame.forward_ring_epoch, ring_epoch);

    // The wrapped bytes decode to the original inner frame, original
    // routing header included — that is what the owner's dedup keys on.
    const wire::DecodedFrame unwrapped =
        wire::decode_frame(frame.forward_inner);
    ASSERT_TRUE(unwrapped.ok());
    EXPECT_EQ(unwrapped.from, client);
    EXPECT_EQ(unwrapped.to, owner);
    EXPECT_EQ(unwrapped.message, inner);

    // And the view-level unwrap the transport hot path uses agrees.
    const wire::FrameView outer = wire::peek_frame(buf);
    ASSERT_TRUE(outer.ok());
    const wire::FrameView iview = wire::peek_forward_inner(outer);
    ASSERT_TRUE(iview.ok());
    EXPECT_EQ(iview.from, client);
    EXPECT_EQ(iview.to, owner);
    EXPECT_EQ(iview.consumed, frame.forward_inner.size());

    // The prefix peek the transport's bounce/serve-here path uses agrees.
    const wire::ForwardPrefix fp = wire::peek_forward_prefix(outer);
    EXPECT_EQ(fp.hops, hops);
    EXPECT_EQ(fp.serve_here, serve_here);
    EXPECT_EQ(fp.ring_epoch, ring_epoch);
  }
}

TEST(WireCodec, ForgedForwardInnerLengthCannotForceAllocation) {
  // v6 forward body: flags+hops u8 at offset 16, ring epoch u64 at 17, then
  // a complete inner frame whose own body-length field sits at
  // 16 + 9 + 12 = 37. Forging it cannot make the decoder allocate or read
  // past the outer body.
  Rng rng(53);
  std::vector<std::uint8_t> buf;
  wire::encode_forward_frame(SiteId{3}, SiteId{1}, 1, false, 0, SiteId{9},
                             SiteId{1}, random_message(rng, 0), buf);

  // Oversized inner claim: rejected as such before any body read.
  std::vector<std::uint8_t> bad = buf;
  const std::uint32_t huge = 0xFFFFFFFFu;
  std::memcpy(bad.data() + 37, &huge, sizeof(huge));
  EXPECT_EQ(wire::decode_frame(bad).status,
            wire::DecodeStatus::kOversizedBody);

  // A plausible inner claim past the wrapped bytes: the outer frame is
  // complete, so this is a malformed frame, never "need more stream".
  bad = buf;
  std::uint32_t inner_len;
  std::memcpy(&inner_len, bad.data() + 37, sizeof(inner_len));
  inner_len += 8;
  std::memcpy(bad.data() + 37, &inner_len, sizeof(inner_len));
  EXPECT_EQ(wire::decode_frame(bad).status, wire::DecodeStatus::kBadField);

  // An inner frame that is not a protocol message (a wrapped heartbeat)
  // is malformed: forwarding exists for client requests only.
  std::vector<std::uint8_t> hb;
  wire::encode_heartbeat_frame(SiteId{9}, SiteId{1}, wire::Heartbeat{}, hb);
  std::vector<std::uint8_t> wrapped;
  wire::encode_forward_frame_raw(SiteId{3}, SiteId{1}, 1, false, 0, hb,
                                 wrapped);
  EXPECT_EQ(wire::decode_frame(wrapped).status, wire::DecodeStatus::kBadField);

  // A forward wrapping nothing at all (empty body would be caught by the
  // size check; a lone flags byte leaves no room for the prefix, let alone
  // an inner header).
  bad = buf;
  bad.resize(wire::kHeaderBytes + 1);
  set_body_len(bad, 1);
  EXPECT_EQ(wire::decode_frame(bad).status, wire::DecodeStatus::kBadField);

  // The reserved flag bits (between the serve-here bit and the hop count)
  // are malformed, not ignored: they are the v7 extension space.
  bad = buf;
  bad[16] |= 0x40;
  EXPECT_EQ(wire::decode_frame(bad).status, wire::DecodeStatus::kBadField);
}

TEST(WireCodec, CacherSubscribeRoundTrip) {
  Rng rng(59);
  for (int iter = 0; iter < 100; ++iter) {
    wire::CacherSubscribe cs;
    cs.object = ObjectId{static_cast<std::uint32_t>(rng.uniform_int(0, 999))};
    cs.cacher = SiteId{static_cast<std::uint32_t>(rng.uniform_int(0, 5000))};
    cs.mode = static_cast<std::uint8_t>(rng.uniform_int(0, 1));

    std::vector<std::uint8_t> buf;
    wire::encode_cacher_subscribe_frame(SiteId{2}, SiteId{0}, cs, buf);
    for (std::size_t len = 0; len < buf.size(); ++len) {
      EXPECT_EQ(wire::decode_frame(
                    std::span<const std::uint8_t>(buf.data(), len)).status,
                wire::DecodeStatus::kNeedMore);
    }
    const wire::DecodedFrame frame = wire::decode_frame(buf);
    ASSERT_TRUE(frame.ok()) << wire::to_cstring(frame.status);
    ASSERT_TRUE(frame.is_cacher_subscribe);
    EXPECT_EQ(frame.consumed, buf.size());
    EXPECT_EQ(frame.cacher_subscribe, cs);
  }

  // Mode byte (absolute offset 16 + 4 + 4) only admits 0/1.
  std::vector<std::uint8_t> buf;
  wire::encode_cacher_subscribe_frame(SiteId{2}, SiteId{0},
                                      wire::CacherSubscribe{}, buf);
  buf[24] = 2;
  EXPECT_EQ(wire::decode_frame(buf).status, wire::DecodeStatus::kBadField);
}

TEST(WireCodec, ClusterFramesRequireVersionFive) {
  // A v4 client (previous release) never agreed to cluster frames: types
  // 14/15/16 under a v4 — or any older — header are malformed, exactly
  // like introspection under v3. This is the downgrade a mixed-version
  // deployment exercises: the v5 server never SENDS cluster frames to a
  // peer that spoke an older hello, and if one arrives anyway the decoder
  // rejects it instead of guessing.
  Rng rng(61);
  std::vector<std::vector<std::uint8_t>> frames(3);
  wire::encode_membership_frame(SiteId{1}, SiteId{2}, 5, 0,
                                random_members(rng, 2), frames[0]);
  wire::encode_forward_frame(SiteId{1}, SiteId{2}, 1, false, 0, SiteId{9},
                             SiteId{2}, random_message(rng, 0), frames[1]);
  wire::encode_cacher_subscribe_frame(SiteId{1}, SiteId{2},
                                      wire::CacherSubscribe{}, frames[2]);
  for (const auto& buf : frames) {
    EXPECT_TRUE(wire::decode_frame(buf).ok());
    for (const std::uint8_t version : {4, 3, 2, 1}) {
      std::vector<std::uint8_t> old = buf;
      old[2] = version;
      EXPECT_EQ(wire::decode_frame(old).status, wire::DecodeStatus::kBadType)
          << "type " << int(buf[3]) << ", version " << int(version);
    }
  }

  // The reverse direction of the downgrade: a v4 header still carries
  // every pre-cluster frame unchanged, so a v4 client interoperates.
  std::vector<std::uint8_t> v4 = encode(SiteId{1}, SiteId{2},
                                        random_message(rng, 0));
  v4[2] = 4;
  EXPECT_TRUE(wire::decode_frame(v4).ok());
}

TEST(WireCodec, SliceSyncRoundTrip) {
  Rng rng(67);
  for (int iter = 0; iter < 100; ++iter) {
    const wire::SliceSyncRequest rq = random_slice_sync(rng);
    std::vector<std::uint8_t> buf;
    wire::encode_slice_sync_frame(SiteId{4}, SiteId{1}, rq, buf);
    for (std::size_t len = 0; len < buf.size(); ++len) {
      EXPECT_EQ(wire::decode_frame(
                    std::span<const std::uint8_t>(buf.data(), len)).status,
                wire::DecodeStatus::kNeedMore);
    }
    const wire::DecodedFrame frame = wire::decode_frame(buf);
    ASSERT_TRUE(frame.ok()) << wire::to_cstring(frame.status);
    ASSERT_TRUE(frame.is_slice_sync);
    EXPECT_EQ(frame.consumed, buf.size());
    EXPECT_EQ(frame.slice_sync, rq);
  }
}

TEST(WireCodec, SliceSyncReplyRoundTripAndForgedCount) {
  Rng rng(71);
  for (int iter = 0; iter < 100; ++iter) {
    const std::uint64_t seq = rng.next_u64();
    const std::uint64_t ring_epoch = rng.next_u64();
    const auto status = static_cast<std::uint8_t>(rng.uniform_int(0, 2));
    const auto next_cursor = static_cast<std::uint32_t>(rng.next_u64());
    const std::vector<wire::SliceRecord> records = random_slice_records(
        rng, static_cast<std::size_t>(rng.uniform_int(0, 12)));
    std::vector<std::uint8_t> buf;
    wire::encode_slice_sync_reply_frame(SiteId{1}, SiteId{4}, seq, ring_epoch,
                                        status, next_cursor, records, buf);
    for (std::size_t len = 0; len < buf.size(); len += 5) {
      EXPECT_EQ(wire::decode_frame(
                    std::span<const std::uint8_t>(buf.data(), len)).status,
                wire::DecodeStatus::kNeedMore);
    }
    const wire::DecodedFrame frame = wire::decode_frame(buf);
    ASSERT_TRUE(frame.ok()) << wire::to_cstring(frame.status);
    ASSERT_TRUE(frame.is_slice_sync_reply);
    EXPECT_EQ(frame.consumed, buf.size());
    EXPECT_EQ(frame.slice_seq, seq);
    EXPECT_EQ(frame.slice_ring_epoch, ring_epoch);
    EXPECT_EQ(frame.slice_status, status);
    EXPECT_EQ(frame.slice_next_cursor, next_cursor);
    ASSERT_EQ(frame.slice_records.size(), records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
      EXPECT_EQ(frame.slice_records[i], records[i]);
    }
  }

  // Reply body: seq u64, ring epoch u64, status u8, next cursor u32, then
  // the record count u32 at absolute offset 37. A forged count can never
  // force a large allocation or an over-read.
  std::vector<std::uint8_t> buf;
  wire::encode_slice_sync_reply_frame(SiteId{1}, SiteId{4}, 1, 2, 0, 3,
                                      random_slice_records(rng, 2), buf);
  std::vector<std::uint8_t> bad = buf;
  const std::uint32_t huge = 0xFFFFFFFFu;
  std::memcpy(bad.data() + 37, &huge, sizeof(huge));
  EXPECT_EQ(wire::decode_frame(bad).status, wire::DecodeStatus::kBadField);
  bad = buf;
  const std::uint32_t plausible = wire::kMaxSliceRecords;
  std::memcpy(bad.data() + 37, &plausible, sizeof(plausible));
  EXPECT_EQ(wire::decode_frame(bad).status, wire::DecodeStatus::kShortBody);
  // Status bytes past kSliceNotReady are malformed, not clamped.
  bad = buf;
  bad[32] = 3;
  EXPECT_EQ(wire::decode_frame(bad).status, wire::DecodeStatus::kBadField);
}

TEST(WireCodec, RingUpdateRoundTripAndForgedCount) {
  Rng rng(73);
  for (int iter = 0; iter < 100; ++iter) {
    const std::uint64_t epoch = rng.next_u64();
    const std::vector<std::uint32_t> members = random_ring_members(
        rng, static_cast<std::size_t>(rng.uniform_int(0, wire::kMaxMembers)));
    std::vector<std::uint8_t> buf;
    wire::encode_ring_update_frame(SiteId{2}, SiteId{9}, epoch, members, buf);
    for (std::size_t len = 0; len < buf.size(); len += 3) {
      EXPECT_EQ(wire::decode_frame(
                    std::span<const std::uint8_t>(buf.data(), len)).status,
                wire::DecodeStatus::kNeedMore);
    }
    const wire::DecodedFrame frame = wire::decode_frame(buf);
    ASSERT_TRUE(frame.ok()) << wire::to_cstring(frame.status);
    ASSERT_TRUE(frame.is_ring_update);
    EXPECT_EQ(frame.consumed, buf.size());
    EXPECT_EQ(frame.ring_update_epoch, epoch);
    ASSERT_EQ(frame.ring_members.size(), members.size());
    for (std::size_t i = 0; i < members.size(); ++i) {
      EXPECT_EQ(frame.ring_members[i], members[i]);
    }
  }

  // Body: ring epoch u64, then the member count u32 at absolute offset 24.
  std::vector<std::uint8_t> buf;
  wire::encode_ring_update_frame(SiteId{2}, SiteId{9}, 7,
                                 random_ring_members(rng, 3), buf);
  std::vector<std::uint8_t> bad = buf;
  const std::uint32_t huge = 0xFFFFFFFFu;
  std::memcpy(bad.data() + 24, &huge, sizeof(huge));
  EXPECT_EQ(wire::decode_frame(bad).status, wire::DecodeStatus::kBadField);
  bad = buf;
  const std::uint32_t plausible = wire::kMaxMembers;
  std::memcpy(bad.data() + 24, &plausible, sizeof(plausible));
  EXPECT_EQ(wire::decode_frame(bad).status, wire::DecodeStatus::kShortBody);
}

TEST(WireCodec, OverloadedRoundTrip) {
  Rng rng(79);
  for (int iter = 0; iter < 100; ++iter) {
    const wire::Overloaded ov{static_cast<std::uint32_t>(rng.next_u64()),
                              rng.next_u64(),
                              static_cast<std::int64_t>(rng.next_u64() >> 1)};
    std::vector<std::uint8_t> buf;
    wire::encode_overloaded_frame(SiteId{1}, SiteId{4}, ov, buf);
    for (std::size_t len = 0; len < buf.size(); ++len) {
      EXPECT_EQ(wire::decode_frame(
                    std::span<const std::uint8_t>(buf.data(), len)).status,
                wire::DecodeStatus::kNeedMore);
    }
    const wire::DecodedFrame frame = wire::decode_frame(buf);
    ASSERT_TRUE(frame.ok()) << wire::to_cstring(frame.status);
    ASSERT_TRUE(frame.is_overloaded);
    EXPECT_EQ(frame.consumed, buf.size());
    EXPECT_EQ(frame.overloaded, ov);
  }
}

TEST(WireCodec, SelfHealingFramesRequireVersionSix) {
  // Types 17-20 under a v5 — or any older — header are malformed: a v6
  // server never sends them to a peer that spoke an older hello.
  Rng rng(83);
  std::vector<std::vector<std::uint8_t>> frames(4);
  wire::encode_slice_sync_frame(SiteId{1}, SiteId{2}, random_slice_sync(rng),
                                frames[0]);
  wire::encode_slice_sync_reply_frame(SiteId{1}, SiteId{2}, 1, 2, 1, 0,
                                      random_slice_records(rng, 1),
                                      frames[1]);
  wire::encode_ring_update_frame(SiteId{1}, SiteId{2}, 3,
                                 random_ring_members(rng, 2), frames[2]);
  wire::encode_overloaded_frame(SiteId{1}, SiteId{2},
                                wire::Overloaded{1, 2, 3}, frames[3]);
  for (const auto& buf : frames) {
    EXPECT_TRUE(wire::decode_frame(buf).ok());
    for (const std::uint8_t version : {5, 4, 3, 2, 1}) {
      std::vector<std::uint8_t> old = buf;
      old[2] = version;
      EXPECT_EQ(wire::decode_frame(old).status, wire::DecodeStatus::kBadType)
          << "type " << int(buf[3]) << ", version " << int(version);
    }
  }
}

TEST(WireCodec, VersionFiveLayoutsStillDecode) {
  // The v5 bodies of the two extended frames must keep decoding with their
  // original layout under a v5 header — that is what lets a mixed v5/v6
  // cluster keep gossiping and forwarding during a rolling upgrade.
  Rng rng(89);

  // v5 membership: [epoch u64][count u32][entries] — the v6 body minus the
  // ring-epoch u64 at body offset 8.
  const std::uint64_t epoch = rng.next_u64();
  const std::vector<wire::MemberEntry> members = random_members(rng, 3);
  std::vector<std::uint8_t> v6;
  wire::encode_membership_frame(SiteId{1}, SiteId{2}, epoch, 77, members, v6);
  std::vector<std::uint8_t> v5(v6.begin(), v6.begin() + 24);  // header+epoch
  v5.insert(v5.end(), v6.begin() + 32, v6.end());             // skip ring ep.
  v5[2] = 5;
  set_body_len(v5, static_cast<std::uint32_t>(v5.size() - wire::kHeaderBytes));
  wire::DecodedFrame frame = wire::decode_frame(v5);
  ASSERT_TRUE(frame.ok()) << wire::to_cstring(frame.status);
  ASSERT_TRUE(frame.is_membership);
  EXPECT_EQ(frame.membership_epoch, epoch);
  EXPECT_EQ(frame.membership_ring_epoch, 0u);  // v5 has none
  ASSERT_EQ(frame.members.size(), members.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    EXPECT_EQ(frame.members[i], members[i]);
  }

  // v5 forward: [hops u8][inner] — the v6 body minus the ring-epoch u64 at
  // body offset 1 (and the v5 hops byte carries no flag bits).
  const Message inner = random_message(rng, 0);
  v6.clear();
  wire::encode_forward_frame(SiteId{3}, SiteId{1}, 2, false, 77, SiteId{9},
                             SiteId{1}, inner, v6);
  std::vector<std::uint8_t> v5f(v6.begin(), v6.begin() + 17);  // header+hops
  v5f.insert(v5f.end(), v6.begin() + 25, v6.end());            // skip ring ep.
  v5f[2] = 5;
  set_body_len(v5f,
               static_cast<std::uint32_t>(v5f.size() - wire::kHeaderBytes));
  frame = wire::decode_frame(v5f);
  ASSERT_TRUE(frame.ok()) << wire::to_cstring(frame.status);
  ASSERT_TRUE(frame.is_forward);
  EXPECT_EQ(frame.forward_hops, 2);
  EXPECT_FALSE(frame.forward_serve_here);
  EXPECT_EQ(frame.forward_ring_epoch, 0u);
  const wire::DecodedFrame unwrapped = wire::decode_frame(frame.forward_inner);
  ASSERT_TRUE(unwrapped.ok());
  EXPECT_EQ(unwrapped.message, inner);
}

TEST(WireCodec, RandomByteFlipsNeverCrashOrOverRead) {
  Rng rng(23);
  for (int iter = 0; iter < 3000; ++iter) {
    const int type = static_cast<int>(rng.uniform_int(0, kNumTypes - 1));
    std::vector<std::uint8_t> buf =
        encode(SiteId{1}, SiteId{2}, random_message(rng, type));
    const int flips = static_cast<int>(rng.uniform_int(1, 8));
    for (int f = 0; f < flips; ++f) {
      const std::size_t at = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(buf.size()) - 1));
      buf[at] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    }
    const wire::DecodedFrame frame = wire::decode_frame(buf);
    if (frame.ok()) {
      EXPECT_LE(frame.consumed, buf.size());
    } else {
      EXPECT_EQ(frame.consumed, 0u);
    }
  }
}

TEST(WireCodec, RandomGarbageNeverCrashes) {
  Rng rng(29);
  for (int iter = 0; iter < 3000; ++iter) {
    std::vector<std::uint8_t> buf(
        static_cast<std::size_t>(rng.uniform_int(0, 600)));
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next_u64());
    // Planting the magic/version sometimes exercises the deeper paths.
    if (buf.size() >= 4 && rng.bernoulli(0.5)) {
      buf[0] = 0x43;
      buf[1] = 0x54;
      buf[2] = wire::kVersion;
      buf[3] = static_cast<std::uint8_t>(rng.uniform_int(1, 8));
    }
    const wire::DecodedFrame frame = wire::decode_frame(buf);
    if (frame.ok()) {
      EXPECT_LE(frame.consumed, buf.size());
    }
  }
}

/// Asserts that the zero-copy path (peek_frame + decode_frame_view into a
/// reused DecodedFrame) agrees with the owning decode_frame on every field
/// for this buffer. `scratch` is deliberately reused across calls — the
/// transport hot path never resets it between frames, so stale state from
/// a previous decode must never leak through.
void expect_view_matches_owning(std::span<const std::uint8_t> buf,
                                wire::DecodedFrame& scratch) {
  const wire::DecodedFrame owning = wire::decode_frame(buf);
  const wire::FrameView view = wire::peek_frame(buf);
  if (view.ok()) {
    ASSERT_EQ(wire::decode_frame_view(view, scratch), scratch.status);
    // The header fields are already authoritative on the view itself.
    // (view.consumed is the header-claimed frame size and stays set even
    // when the body decode below fails, so it only matches the owning
    // count on success — scratch.consumed matches unconditionally.)
    if (owning.ok()) {
      EXPECT_EQ(view.from, owning.from);
      EXPECT_EQ(view.to, owning.to);
      EXPECT_EQ(view.consumed, owning.consumed);
    }
  } else {
    // Every header-stage rejection must be the owning path's rejection.
    ASSERT_EQ(view.status, owning.status);
    EXPECT_EQ(view.consumed, 0u);
    return;
  }
  ASSERT_EQ(scratch.status, owning.status)
      << wire::to_cstring(scratch.status) << " vs "
      << wire::to_cstring(owning.status);
  EXPECT_EQ(scratch.consumed, owning.consumed);
  if (!owning.ok()) return;
  EXPECT_EQ(scratch.from, owning.from);
  EXPECT_EQ(scratch.to, owning.to);
  EXPECT_EQ(scratch.is_heartbeat, owning.is_heartbeat);
  EXPECT_EQ(scratch.is_time_sync, owning.is_time_sync);
  EXPECT_EQ(scratch.is_stats_request, owning.is_stats_request);
  EXPECT_EQ(scratch.is_stats_reply, owning.is_stats_reply);
  EXPECT_EQ(scratch.is_membership, owning.is_membership);
  EXPECT_EQ(scratch.is_forward, owning.is_forward);
  EXPECT_EQ(scratch.is_cacher_subscribe, owning.is_cacher_subscribe);
  EXPECT_EQ(scratch.is_slice_sync, owning.is_slice_sync);
  EXPECT_EQ(scratch.is_slice_sync_reply, owning.is_slice_sync_reply);
  EXPECT_EQ(scratch.is_ring_update, owning.is_ring_update);
  EXPECT_EQ(scratch.is_overloaded, owning.is_overloaded);
  if (owning.is_membership) {
    EXPECT_EQ(scratch.membership_epoch, owning.membership_epoch);
    EXPECT_EQ(scratch.membership_ring_epoch, owning.membership_ring_epoch);
    ASSERT_EQ(scratch.members.size(), owning.members.size());
    for (std::size_t i = 0; i < owning.members.size(); ++i) {
      EXPECT_EQ(scratch.members[i], owning.members[i]);
    }
    return;
  }
  if (owning.is_forward) {
    EXPECT_EQ(scratch.forward_hops, owning.forward_hops);
    EXPECT_EQ(scratch.forward_serve_here, owning.forward_serve_here);
    EXPECT_EQ(scratch.forward_ring_epoch, owning.forward_ring_epoch);
    EXPECT_EQ(scratch.forward_inner, owning.forward_inner);
    return;
  }
  if (owning.is_slice_sync) {
    EXPECT_EQ(scratch.slice_sync, owning.slice_sync);
    return;
  }
  if (owning.is_slice_sync_reply) {
    EXPECT_EQ(scratch.slice_seq, owning.slice_seq);
    EXPECT_EQ(scratch.slice_ring_epoch, owning.slice_ring_epoch);
    EXPECT_EQ(scratch.slice_status, owning.slice_status);
    EXPECT_EQ(scratch.slice_next_cursor, owning.slice_next_cursor);
    ASSERT_EQ(scratch.slice_records.size(), owning.slice_records.size());
    for (std::size_t i = 0; i < owning.slice_records.size(); ++i) {
      EXPECT_EQ(scratch.slice_records[i], owning.slice_records[i]);
    }
    return;
  }
  if (owning.is_ring_update) {
    EXPECT_EQ(scratch.ring_update_epoch, owning.ring_update_epoch);
    ASSERT_EQ(scratch.ring_members.size(), owning.ring_members.size());
    for (std::size_t i = 0; i < owning.ring_members.size(); ++i) {
      EXPECT_EQ(scratch.ring_members[i], owning.ring_members[i]);
    }
    return;
  }
  if (owning.is_overloaded) {
    EXPECT_EQ(scratch.overloaded, owning.overloaded);
    return;
  }
  if (owning.is_cacher_subscribe) {
    EXPECT_EQ(scratch.cacher_subscribe, owning.cacher_subscribe);
    return;
  }
  if (owning.is_stats_request) {
    EXPECT_EQ(scratch.stats_request.seq, owning.stats_request.seq);
    EXPECT_EQ(scratch.stats_request.target_site,
              owning.stats_request.target_site);
    return;
  }
  if (owning.is_stats_reply) {
    EXPECT_EQ(scratch.stats_seq, owning.stats_seq);
    EXPECT_EQ(scratch.stats_boards, owning.stats_boards);
    ASSERT_EQ(scratch.stats_rows.size(), owning.stats_rows.size());
    for (std::size_t i = 0; i < owning.stats_rows.size(); ++i) {
      EXPECT_EQ(scratch.stats_rows[i].site, owning.stats_rows[i].site);
      EXPECT_EQ(scratch.stats_rows[i].key, owning.stats_rows[i].key);
      EXPECT_EQ(scratch.stats_rows[i].value, owning.stats_rows[i].value);
    }
    return;
  }
  if (owning.is_heartbeat) {
    EXPECT_EQ(scratch.heartbeat.seq, owning.heartbeat.seq);
    EXPECT_EQ(scratch.heartbeat.send_time_us, owning.heartbeat.send_time_us);
    EXPECT_EQ(scratch.heartbeat.reply, owning.heartbeat.reply);
  } else if (owning.is_time_sync) {
    EXPECT_EQ(scratch.time_sync.seq, owning.time_sync.seq);
    EXPECT_EQ(scratch.time_sync.client_send_us,
              owning.time_sync.client_send_us);
    EXPECT_EQ(scratch.time_sync.server_time_us,
              owning.time_sync.server_time_us);
    EXPECT_EQ(scratch.time_sync.reply, owning.time_sync.reply);
  } else {
    EXPECT_EQ(scratch.message, owning.message);
  }
}

TEST(WireCodec, ViewDecodeMatchesOwningDecodeOnEveryInput) {
  // The property behind the transport's zero-copy hot path: for ANY byte
  // buffer — valid frames of every type, heartbeats, time-sync legs,
  // truncations, bit flips, garbage — decode_frame_view(peek_frame(buf))
  // yields exactly decode_frame(buf)'s status, consumed count and fields.
  Rng rng(20260807);
  wire::DecodedFrame scratch;  // reused throughout, like a Connection's
  for (int iter = 0; iter < 400; ++iter) {
    for (int type = 0; type < kNumTypes; ++type) {
      std::vector<std::uint8_t> buf =
          encode(random_site(rng), random_site(rng), random_message(rng, type));
      expect_view_matches_owning(buf, scratch);
      // Every truncation.
      for (std::size_t cut = 0; cut < buf.size(); cut += 3) {
        expect_view_matches_owning(
            std::span<const std::uint8_t>(buf.data(), cut), scratch);
      }
      // Random corruption.
      const int flips = static_cast<int>(rng.uniform_int(1, 6));
      for (int f = 0; f < flips; ++f) {
        const std::size_t at = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(buf.size()) - 1));
        buf[at] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
      }
      expect_view_matches_owning(buf, scratch);
    }
    // Transport-internal frames, which the owning path also understands.
    {
      std::vector<std::uint8_t> buf;
      wire::Heartbeat hb{rng.next_u64(),
                         static_cast<std::int64_t>(rng.next_u64() >> 1),
                         rng.bernoulli(0.5)};
      wire::encode_heartbeat_frame(SiteId{1}, SiteId{2}, hb, buf);
      expect_view_matches_owning(buf, scratch);
      buf.clear();
      wire::TimeSync ts{rng.next_u64(),
                        static_cast<std::int64_t>(rng.next_u64() >> 1),
                        static_cast<std::int64_t>(rng.next_u64() >> 1),
                        rng.bernoulli(0.5)};
      wire::encode_time_sync_frame(SiteId{1}, SiteId{2}, ts, buf);
      expect_view_matches_owning(buf, scratch);
      buf.clear();
      wire::StatsRequest rq{rng.next_u64(),
                            static_cast<std::uint32_t>(rng.next_u64())};
      wire::encode_stats_request_frame(SiteId{1}, SiteId{2}, rq, buf);
      expect_view_matches_owning(buf, scratch);
      buf.clear();
      std::vector<StatsEntry> entries(
          static_cast<std::size_t>(rng.uniform_int(0, 8)));
      for (auto& e : entries) {
        e.key = static_cast<std::uint16_t>(rng.next_u64());
        e.value = static_cast<std::int64_t>(rng.next_u64());
      }
      const std::vector<wire::StatsBoardSpan> boards = {
          {static_cast<std::uint32_t>(rng.uniform_int(0, 500)), entries}};
      wire::encode_stats_reply_frame(SiteId{1}, SiteId{2}, rng.next_u64(),
                                     boards, buf);
      expect_view_matches_owning(buf, scratch);
      // Corrupt the stats reply too: its nested counts are the newest
      // attack surface.
      const int sflips = static_cast<int>(rng.uniform_int(1, 4));
      for (int f = 0; f < sflips; ++f) {
        const std::size_t at = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(buf.size()) - 1));
        buf[at] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
      }
      expect_view_matches_owning(buf, scratch);
    }
    // Cluster frames (v5/v6): membership digests, forwarded requests and
    // cacher registrations, pristine then bit-flipped — the forward
    // frame's nested length field is the newest nested-count surface.
    {
      std::vector<std::uint8_t> buf;
      wire::encode_membership_frame(
          SiteId{1}, SiteId{2}, rng.next_u64(), rng.next_u64(),
          random_members(rng,
                         static_cast<std::size_t>(rng.uniform_int(0, 8))),
          buf);
      expect_view_matches_owning(buf, scratch);
      buf.clear();
      wire::encode_forward_frame(
          SiteId{1}, SiteId{2},
          static_cast<std::uint8_t>(rng.uniform_int(0, 3)),
          rng.bernoulli(0.3), rng.next_u64(), random_site(rng), SiteId{2},
          random_message(rng, static_cast<int>(
                                  rng.uniform_int(0, kNumTypes - 1))),
          buf);
      expect_view_matches_owning(buf, scratch);
      const int cflips = static_cast<int>(rng.uniform_int(1, 4));
      for (int f = 0; f < cflips; ++f) {
        const std::size_t at = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(buf.size()) - 1));
        buf[at] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
      }
      expect_view_matches_owning(buf, scratch);
      buf.clear();
      wire::CacherSubscribe cs{
          ObjectId{static_cast<std::uint32_t>(rng.uniform_int(0, 999))},
          random_site(rng), static_cast<std::uint8_t>(rng.uniform_int(0, 1))};
      wire::encode_cacher_subscribe_frame(SiteId{1}, SiteId{2}, cs, buf);
      expect_view_matches_owning(buf, scratch);
    }
    // Self-healing frames (v6), pristine then bit-flipped — the slice
    // reply's record count and the ring update's member count are the
    // newest nested-count surfaces.
    {
      std::vector<std::uint8_t> buf;
      wire::encode_slice_sync_frame(SiteId{1}, SiteId{2},
                                    random_slice_sync(rng), buf);
      expect_view_matches_owning(buf, scratch);
      buf.clear();
      wire::encode_slice_sync_reply_frame(
          SiteId{1}, SiteId{2}, rng.next_u64(), rng.next_u64(),
          static_cast<std::uint8_t>(rng.uniform_int(0, 2)),
          static_cast<std::uint32_t>(rng.next_u64()),
          random_slice_records(
              rng, static_cast<std::size_t>(rng.uniform_int(0, 8))),
          buf);
      expect_view_matches_owning(buf, scratch);
      const int vflips = static_cast<int>(rng.uniform_int(1, 4));
      for (int f = 0; f < vflips; ++f) {
        const std::size_t at = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(buf.size()) - 1));
        buf[at] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
      }
      expect_view_matches_owning(buf, scratch);
      buf.clear();
      wire::encode_ring_update_frame(
          SiteId{1}, SiteId{2}, rng.next_u64(),
          random_ring_members(
              rng, static_cast<std::size_t>(rng.uniform_int(0, 8))),
          buf);
      expect_view_matches_owning(buf, scratch);
      buf.clear();
      wire::encode_overloaded_frame(
          SiteId{1}, SiteId{2},
          wire::Overloaded{static_cast<std::uint32_t>(rng.next_u64()),
                           rng.next_u64(),
                           static_cast<std::int64_t>(rng.next_u64() >> 1)},
          buf);
      expect_view_matches_owning(buf, scratch);
    }
    // Pure garbage, occasionally with a plausible header planted.
    {
      std::vector<std::uint8_t> buf(
          static_cast<std::size_t>(rng.uniform_int(0, 200)));
      for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next_u64());
      if (buf.size() >= 4 && rng.bernoulli(0.5)) {
        buf[0] = 0x43;
        buf[1] = 0x54;
        buf[2] = wire::kVersion;
        buf[3] = static_cast<std::uint8_t>(rng.uniform_int(1, 8));
      }
      expect_view_matches_owning(buf, scratch);
    }
  }
}

}  // namespace
}  // namespace timedc
