// Tests for the discrete-event simulator, the network model and the
// workload generator.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "sim/workload.hpp"

namespace timedc {
namespace {

SimTime us(std::int64_t n) { return SimTime::micros(n); }

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> fired;
  sim.schedule_at(us(30), [&] { fired.push_back(3); });
  sim.schedule_at(us(10), [&] { fired.push_back(1); });
  sim.schedule_at(us(20), [&] { fired.push_back(2); });
  EXPECT_EQ(sim.run_until(), 3u);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), us(30));
}

TEST(SimulatorTest, EqualTimesFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(us(7), [&fired, i] { fired.push_back(i); });
  }
  sim.run_until();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  int count = 0;
  std::function<void()> ping = [&] {
    ++count;
    if (count < 10) sim.schedule_after(us(5), ping);
  };
  sim.schedule_at(us(0), ping);
  sim.run_until();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(sim.now(), us(45));
}

TEST(SimulatorTest, HorizonStopsAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(us(10), [&] { ++fired; });
  sim.schedule_at(us(100), [&] { ++fired; });
  EXPECT_EQ(sim.run_until(us(50)), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), us(50));
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_until();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, StepExecutesOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(us(1), [&] { ++fired; });
  sim.schedule_at(us(2), [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

struct IntPayload {
  int value;
};

TEST(NetworkTest, DeliversWithFixedLatency) {
  Simulator sim;
  Network net(sim, 2, std::make_unique<FixedLatency>(us(15)), {}, Rng(1));
  SimTime delivered_at = SimTime::zero();
  int got = 0;
  net.set_handler(SiteId{1}, [&](SiteId from, const std::shared_ptr<void>& p) {
    EXPECT_EQ(from, SiteId{0});
    got = std::static_pointer_cast<IntPayload>(p)->value;
    delivered_at = sim.now();
  });
  net.send(SiteId{0}, SiteId{1}, std::make_shared<IntPayload>(IntPayload{42}), 100);
  sim.run_until();
  EXPECT_EQ(got, 42);
  EXPECT_EQ(delivered_at, us(15));
  EXPECT_EQ(net.stats().messages_sent, 1u);
  EXPECT_EQ(net.stats().messages_delivered, 1u);
  EXPECT_EQ(net.stats().bytes_sent, 100u);
}

TEST(NetworkTest, DropProbabilityOneDropsAll) {
  Simulator sim;
  NetworkConfig config;
  config.drop_probability = 1.0;
  Network net(sim, 2, std::make_unique<FixedLatency>(us(1)), config, Rng(2));
  net.set_handler(SiteId{1}, [&](SiteId, const std::shared_ptr<void>&) {
    FAIL() << "dropped message was delivered";
  });
  for (int i = 0; i < 10; ++i) {
    net.send(SiteId{0}, SiteId{1}, std::make_shared<IntPayload>(IntPayload{i}), 1);
  }
  sim.run_until();
  EXPECT_EQ(net.stats().messages_dropped, 10u);
  EXPECT_EQ(net.stats().messages_delivered, 0u);
}

TEST(NetworkTest, FifoLinksPreserveSendOrder) {
  Simulator sim;
  NetworkConfig config;
  config.fifo_links = true;
  Network net(sim, 2, std::make_unique<UniformLatency>(us(1), us(100)), config,
              Rng(3));
  std::vector<int> received;
  net.set_handler(SiteId{1}, [&](SiteId, const std::shared_ptr<void>& p) {
    received.push_back(std::static_pointer_cast<IntPayload>(p)->value);
  });
  for (int i = 0; i < 20; ++i) {
    net.send(SiteId{0}, SiteId{1}, std::make_shared<IntPayload>(IntPayload{i}), 1);
  }
  sim.run_until();
  ASSERT_EQ(received.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(received[i], i);
}

TEST(NetworkTest, NonFifoCanReorder) {
  Simulator sim;
  NetworkConfig config;
  config.fifo_links = false;
  Network net(sim, 2, std::make_unique<UniformLatency>(us(1), us(1000)), config,
              Rng(4));
  std::vector<int> received;
  net.set_handler(SiteId{1}, [&](SiteId, const std::shared_ptr<void>& p) {
    received.push_back(std::static_pointer_cast<IntPayload>(p)->value);
  });
  for (int i = 0; i < 50; ++i) {
    net.send(SiteId{0}, SiteId{1}, std::make_shared<IntPayload>(IntPayload{i}), 1);
  }
  sim.run_until();
  ASSERT_EQ(received.size(), 50u);
  EXPECT_FALSE(std::is_sorted(received.begin(), received.end()));
}

TEST(LatencyModelTest, UniformStaysInBounds) {
  Rng rng(5);
  UniformLatency m(us(10), us(20));
  for (int i = 0; i < 200; ++i) {
    const SimTime t = m.sample(SiteId{0}, SiteId{1}, rng);
    EXPECT_GE(t, us(10));
    EXPECT_LE(t, us(20));
  }
  EXPECT_EQ(m.upper_bound(), us(20));
}

TEST(LatencyModelTest, ExponentialRespectsFloorAndCap) {
  Rng rng(6);
  ExponentialLatency m(us(5), us(30), us(100));
  for (int i = 0; i < 500; ++i) {
    const SimTime t = m.sample(SiteId{0}, SiteId{1}, rng);
    EXPECT_GE(t, us(5));
    EXPECT_LE(t, us(100));
  }
}

TEST(WorkloadTest, DeterministicAndSorted) {
  WorkloadParams p;
  p.horizon = SimTime::millis(200);
  Rng rng1(7), rng2(7);
  const auto a = generate_workload(p, rng1);
  const auto b = generate_workload(p, rng2);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].client, b[i].client);
    EXPECT_EQ(a[i].object, b[i].object);
    EXPECT_EQ(a[i].is_write, b[i].is_write);
  }
  for (std::size_t i = 1; i < a.size(); ++i) EXPECT_LE(a[i - 1].at, a[i].at);
}

TEST(WorkloadTest, WriteRatioRoughlyRespected) {
  WorkloadParams p;
  p.write_ratio = 0.3;
  p.horizon = SimTime::seconds(5);
  p.mean_think_time = SimTime::micros(500);
  Rng rng(8);
  const auto ops = generate_workload(p, rng);
  ASSERT_GT(ops.size(), 1000u);
  std::size_t writes = 0;
  for (const auto& op : ops) writes += op.is_write ? 1 : 0;
  const double ratio = static_cast<double>(writes) / ops.size();
  EXPECT_NEAR(ratio, 0.3, 0.05);
}

TEST(WorkloadTest, ZipfSkewsTowardLowObjectIds) {
  WorkloadParams p;
  p.zipf_exponent = 1.2;
  p.num_objects = 50;
  p.horizon = SimTime::seconds(5);
  p.mean_think_time = SimTime::micros(500);
  Rng rng(9);
  const auto ops = generate_workload(p, rng);
  std::vector<int> counts(50, 0);
  for (const auto& op : ops) counts[op.object.value]++;
  EXPECT_GT(counts[0], counts[25]);
}

TEST(WorkloadTest, PerClientTimesStrictlyIncrease) {
  WorkloadParams p;
  Rng rng(10);
  const auto ops = generate_workload(p, rng);
  std::vector<SimTime> last(p.num_clients, SimTime::micros(-1));
  for (const auto& op : ops) {
    EXPECT_GT(op.at, last[op.client.value]);
    last[op.client.value] = op.at;
  }
}

}  // namespace
}  // namespace timedc
