// Unit tests for the common substrate: SimTime arithmetic (notably the
// infinity used for Delta = inf), RNG determinism and distribution shape.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "common/types.hpp"

namespace timedc {
namespace {

TEST(SimTimeTest, BasicArithmetic) {
  const SimTime a = SimTime::micros(100);
  const SimTime b = SimTime::micros(40);
  EXPECT_EQ((a + b).as_micros(), 140);
  EXPECT_EQ((a - b).as_micros(), 60);
  EXPECT_EQ((a * 3).as_micros(), 300);
  EXPECT_EQ((a / 4).as_micros(), 25);
  EXPECT_LT(b, a);
  EXPECT_EQ(min(a, b), b);
  EXPECT_EQ(max(a, b), a);
}

TEST(SimTimeTest, UnitConstructors) {
  EXPECT_EQ(SimTime::millis(3).as_micros(), 3000);
  EXPECT_EQ(SimTime::seconds(2).as_micros(), 2000000);
  EXPECT_DOUBLE_EQ(SimTime::seconds(1).as_seconds(), 1.0);
}

TEST(SimTimeTest, InfinityAbsorbs) {
  const SimTime inf = SimTime::infinity();
  const SimTime a = SimTime::micros(5);
  EXPECT_TRUE(inf.is_infinite());
  EXPECT_TRUE((inf + a).is_infinite());
  EXPECT_TRUE((a + inf).is_infinite());
  EXPECT_TRUE((inf - a).is_infinite());
  EXPECT_TRUE((inf * 7).is_infinite());
  EXPECT_LT(a, inf);
}

TEST(SimTimeTest, FiniteMinusInfinitySaturatesLow) {
  // Used by the timed checks as "no lower bound": T(r) - Delta with
  // Delta = infinity must be below every finite timestamp.
  const SimTime low = SimTime::micros(42) - SimTime::infinity();
  EXPECT_LT(low, SimTime::micros(-1000000));
}

TEST(SimTimeTest, ComparisonWithNegatives) {
  EXPECT_LT(SimTime::micros(-5), SimTime::zero());
  EXPECT_EQ((SimTime::micros(-5) + SimTime::micros(5)), SimTime::zero());
}

TEST(StrongTypesTest, ToStringMatchesPaperNotation) {
  EXPECT_EQ(to_string(ObjectId{0}), "A");
  EXPECT_EQ(to_string(ObjectId{2}), "C");
  EXPECT_EQ(to_string(ObjectId{23}), "X");
  EXPECT_EQ(to_string(ObjectId{99}), "obj99");
  EXPECT_EQ(to_string(SiteId{3}), "site3");
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformIntCoversEndpoints) {
  Rng rng(8);
  bool lo = false, hi = false;
  for (int i = 0; i < 2000 && !(lo && hi); ++i) {
    const std::int64_t v = rng.uniform_int(0, 3);
    lo |= (v == 0);
    hi |= (v == 3);
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(RngTest, Uniform01Bounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(10);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, ExponentialMeanRoughlyCorrect) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(50.0);
  const double mean = sum / n;
  EXPECT_NEAR(mean, 50.0, 2.5);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(42);
  Rng b = a.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(ZipfTest, RankOneIsMostPopular) {
  Rng rng(13);
  ZipfDistribution zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) counts[zipf.sample(rng)]++;
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[99]);
  // Harmonic shape: rank 0 should take roughly 1/H(100) ~ 19% of mass.
  EXPECT_NEAR(static_cast<double>(counts[0]) / 20000.0, 0.19, 0.04);
}

TEST(ZipfTest, NearZeroExponentIsAlmostUniform) {
  Rng rng(14);
  ZipfDistribution zipf(10, 1e-9);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) counts[zipf.sample(rng)]++;
  for (int c : counts) EXPECT_NEAR(c, 2000, 300);
}

TEST(ZipfTest, SamplesInRange) {
  Rng rng(15);
  ZipfDistribution zipf(5, 1.2);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.sample(rng), 5u);
}

}  // namespace
}  // namespace timedc
