// Tests for the fully-replicated store over Delta-causal broadcast:
// convergence, causal visibility, write-wins determinism, and timeliness
// (updates visible within Delta of the write).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "broadcast/replicated_store.hpp"

namespace timedc {
namespace {

SimTime us(std::int64_t n) { return SimTime::micros(n); }
SimTime ms(std::int64_t n) { return SimTime::millis(n); }

struct StoreGroup {
  Simulator sim;
  std::unique_ptr<Network> net;
  std::vector<std::unique_ptr<ReplicatedStore>> members;

  StoreGroup(std::size_t n, SimTime delta,
             std::unique_ptr<LatencyModel> latency, std::uint64_t seed = 1) {
    NetworkConfig config;
    config.fifo_links = false;
    net = std::make_unique<Network>(sim, n, std::move(latency), config,
                                    Rng(seed));
    for (std::uint32_t i = 0; i < n; ++i) {
      members.push_back(
          std::make_unique<ReplicatedStore>(sim, *net, SiteId{i}, n, delta));
      members.back()->attach();
    }
  }
};

TEST(ReplicatedStoreTest, WriteVisibleEverywhereAfterPropagation) {
  StoreGroup g(3, SimTime::infinity(), std::make_unique<FixedLatency>(us(50)));
  g.members[0]->write(ObjectId{0}, Value{7});
  EXPECT_EQ(g.members[0]->read(ObjectId{0}), Value{7});  // own write immediate
  EXPECT_EQ(g.members[1]->read(ObjectId{0}), Value{0});  // not yet delivered
  g.sim.run_until();
  for (const auto& m : g.members) {
    EXPECT_EQ(m->read(ObjectId{0}), Value{7});
  }
}

TEST(ReplicatedStoreTest, ReadsAreLocalNoMessages) {
  StoreGroup g(3, SimTime::infinity(), std::make_unique<FixedLatency>(us(50)));
  g.members[0]->write(ObjectId{0}, Value{7});
  g.sim.run_until();
  const auto sent_before = g.net->stats().messages_sent;
  for (int k = 0; k < 100; ++k) {
    (void)g.members[1]->read(ObjectId{0});
  }
  EXPECT_EQ(g.net->stats().messages_sent, sent_before);
}

TEST(ReplicatedStoreTest, ConcurrentWritesConvergeEverywhere) {
  StoreGroup g(4, SimTime::infinity(),
               std::make_unique<UniformLatency>(us(10), us(2000)), 9);
  // Two sites write the same object at the same instant: write-wins order
  // is (time, site id), so site 2's value must win everywhere.
  g.sim.schedule_at(us(100), [&] { g.members[1]->write(ObjectId{0}, Value{11}); });
  g.sim.schedule_at(us(100), [&] { g.members[2]->write(ObjectId{0}, Value{22}); });
  g.sim.run_until();
  for (const auto& m : g.members) {
    EXPECT_EQ(m->read(ObjectId{0}), Value{22});
  }
}

TEST(ReplicatedStoreTest, CausalChainVisibleInOrder) {
  // Site 1 reacts to site 0's update; no site may apply the reaction
  // without the cause (causal broadcast) — final state is the reaction.
  StoreGroup g(3, SimTime::infinity(),
               std::make_unique<UniformLatency>(us(10), us(4000)), 5);
  g.sim.schedule_at(us(100), [&] { g.members[0]->write(ObjectId{0}, Value{1}); });
  // Poll site 1 until it sees value 1, then overwrite causally.
  std::function<void()> react = [&] {
    if (g.members[1]->read(ObjectId{0}) == Value{1}) {
      g.members[1]->write(ObjectId{0}, Value{2});
    } else {
      g.sim.schedule_after(us(200), react);
    }
  };
  g.sim.schedule_at(us(150), react);
  g.sim.run_until();
  for (const auto& m : g.members) {
    EXPECT_EQ(m->read(ObjectId{0}), Value{2});
  }
}

TEST(ReplicatedStoreTest, TimelinessWithinDelta) {
  // With latency <= Delta, every write is visible everywhere within Delta.
  const SimTime delta = ms(2);
  StoreGroup g(3, delta, std::make_unique<UniformLatency>(us(100), us(1500)),
               13);
  g.sim.schedule_at(us(500), [&] { g.members[0]->write(ObjectId{3}, Value{5}); });
  g.sim.run_until(us(500) + delta + us(1));
  for (const auto& m : g.members) {
    EXPECT_EQ(m->read(ObjectId{3}), Value{5});
  }
}

TEST(ReplicatedStoreTest, LateUpdateDiscardedNotDeliveredLate) {
  // Latency beyond Delta: remote replicas never see the value at all —
  // stale but never "late" (the Delta-causal contract).
  StoreGroup g(2, us(100), std::make_unique<FixedLatency>(us(500)));
  g.members[0]->write(ObjectId{0}, Value{5});
  g.sim.run_until();
  EXPECT_EQ(g.members[0]->read(ObjectId{0}), Value{5});
  EXPECT_EQ(g.members[1]->read(ObjectId{0}), Value{0});
  EXPECT_EQ(g.members[1]->broadcast_stats().discarded_late, 1u);
}

}  // namespace
}  // namespace timedc
