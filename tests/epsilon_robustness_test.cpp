// Epsilon edge cases for Definition 2's shrunken interference set, property
// tested over generated histories: growing the skew bound only ever weakens
// the timed predicate (eps-shrunken reads_on_time is never stricter than
// eps = 0, min_timed_delta is monotone non-increasing in eps), a large
// enough eps dissolves every interference, and the measured-eps trace
// directive survives a write/parse round trip.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "core/history.hpp"
#include "core/history_gen.hpp"
#include "core/timed.hpp"
#include "core/trace_io.hpp"

namespace timedc {
namespace {

SimTime us(std::int64_t n) { return SimTime::micros(n); }

std::vector<History> property_histories() {
  std::vector<History> out;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    RandomHistoryParams p;
    p.num_sites = 2 + seed % 3;
    p.num_objects = 1 + seed % 3;
    p.num_ops = 10 + static_cast<std::size_t>(seed % 7) * 4;
    p.write_ratio = 0.3 + 0.05 * static_cast<double>(seed % 8);
    Rng rng = Rng::stream(12345, seed);
    out.push_back(random_history(p, rng));
  }
  return out;
}

// A positive eps only removes pairs from W_r (thresholds shrink, concurrent
// writes drop out), so any history on time at eps = 0 stays on time at any
// eps > 0, every late read at eps > 0 is also late at eps = 0, and W_r can
// only shrink per read. The checker with a measured eps can therefore never
// reject an execution a perfectly-synchronized checker would accept.
TEST(EpsilonRobustness, ShrunkenPredicateNeverStricterThanEpsZero) {
  const std::vector<SimTime> epsilons = {us(1), us(5), us(20), us(1000)};
  for (const History& h : property_histories()) {
    for (SimTime delta : {us(0), us(10), us(40)}) {
      const TimedCheckResult base = reads_on_time(h, TimedSpecEpsilon{delta, us(0)});
      for (SimTime eps : epsilons) {
        const TimedCheckResult shrunk =
            reads_on_time(h, TimedSpecEpsilon{delta, eps});
        if (base.all_on_time) {
          EXPECT_TRUE(shrunk.all_on_time)
              << "eps=" << eps.as_micros() << "us delta=" << delta.as_micros()
              << "us made the predicate stricter";
        }
        EXPECT_LE(shrunk.late_reads.size(), base.late_reads.size());
        for (const LateRead& late : shrunk.late_reads) {
          const std::vector<OpIndex> w0 =
              interference_set(h, late.read, delta, us(0));
          EXPECT_LE(late.w_r.size(), w0.size());
        }
      }
    }
  }
}

TEST(EpsilonRobustness, MinTimedDeltaMonotoneNonIncreasingInEps) {
  for (const History& h : property_histories()) {
    SimTime prev = min_timed_delta(h, us(0));
    EXPECT_EQ(prev, min_timed_delta(h));  // eps = 0 is Definition 1
    for (SimTime eps : {us(2), us(8), us(30), us(200)}) {
      const SimTime d = min_timed_delta(h, eps);
      EXPECT_LE(d, prev) << "eps=" << eps.as_micros() << "us";
      prev = d;
    }
  }
}

// Once eps exceeds every timestamp gap in the history no write definitely
// precedes another, Definition 2's interference sets are all empty, and the
// execution is timed at Delta = 0 — eps larger than Delta is meaningful,
// it simply floors the required Delta at zero rather than going negative.
TEST(EpsilonRobustness, HugeEpsDissolvesAllInterference) {
  for (const History& h : property_histories()) {
    const SimTime huge = SimTime::seconds(10);
    EXPECT_EQ(min_timed_delta(h, huge), SimTime::zero());
    EXPECT_TRUE(reads_on_time(h, TimedSpecEpsilon{SimTime::zero(), huge})
                    .all_on_time);
  }
}

// The NET-C shape in miniature: a read that returns a value staler than
// Delta under raw clocks is late at eps = 0, but a measured eps covering
// the skew (here, all of the 60ms gap) excuses it.
TEST(EpsilonRobustness, MeasuredEpsExcusesBoundedSkew) {
  HistoryBuilder b(2);
  b.write(SiteId{0}, ObjectId{0}, Value{1}, us(1000));
  b.write(SiteId{0}, ObjectId{0}, Value{2}, us(2000));
  // Site 1's clock runs 60ms behind: its read of the stale value 1 carries
  // timestamp 62ms while the overwrite is stamped 2ms.
  b.read(SiteId{1}, ObjectId{0}, Value{1}, us(62000));
  const History h = b.build();

  EXPECT_FALSE(
      reads_on_time(h, TimedSpecEpsilon{us(10000), us(0)}).all_on_time);
  EXPECT_TRUE(
      reads_on_time(h, TimedSpecEpsilon{us(10000), us(60000)}).all_on_time);
  EXPECT_GT(min_timed_delta(h, us(0)), us(10000));
  EXPECT_LE(min_timed_delta(h, us(60000)), us(10000));
}

TEST(EpsilonRobustness, TraceEpsDirectiveRoundTrips) {
  HistoryBuilder b(2);
  b.write(SiteId{0}, ObjectId{0}, Value{7}, us(10));
  b.read(SiteId{1}, ObjectId{0}, Value{7}, us(25));
  const History h = b.build();

  const std::string with_eps = write_trace(h, us(1234));
  const TraceParseResult parsed = parse_trace(with_eps);
  ASSERT_TRUE(parsed.history.has_value()) << parsed.error;
  ASSERT_TRUE(parsed.measured_eps.has_value());
  EXPECT_EQ(*parsed.measured_eps, us(1234));

  // No eps recorded (or an unknown, infinite bound): directive absent.
  const TraceParseResult plain = parse_trace(write_trace(h));
  ASSERT_TRUE(plain.history.has_value());
  EXPECT_FALSE(plain.measured_eps.has_value());
  const TraceParseResult inf =
      parse_trace(write_trace(h, SimTime::infinity()));
  ASSERT_TRUE(inf.history.has_value());
  EXPECT_FALSE(inf.measured_eps.has_value());

  // A malformed directive is a parse error, not a silent eps = 0.
  EXPECT_FALSE(parse_trace("sites 1\neps -5\nw 0 A 1 10\n").history.has_value());
  EXPECT_FALSE(parse_trace("sites 1\neps\nw 0 A 1 10\n").history.has_value());
}

}  // namespace
}  // namespace timedc
