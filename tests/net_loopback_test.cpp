// Loopback integration tests for the real TCP transport stack: an
// in-process timedc server (EventLoop + TcpTransport + ObjectServer on an
// ephemeral 127.0.0.1 port) serving TSC clients over a second transport.
//
// The headline property is the paper's: a fault-free TSC execution over
// real sockets, with Delta far above the loopback RTT, yields a history
// that IS timed sequentially consistent — checked with the same
// reads_on_time / check_tsc machinery the sim experiments use.
//
// Also covered: the framed-transport hardening that request_id == 0
// ("unsequenced", a raw in-process test convention) is rejected by servers
// behind a real transport but still served on the raw sim path.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "clocks/physical_clock.hpp"
#include "common/rng.hpp"
#include "core/checkers.hpp"
#include "core/history.hpp"
#include "core/timed.hpp"
#include "net/event_loop.hpp"
#include "net/tcp_transport.hpp"
#include "protocol/server.hpp"
#include "protocol/timed_serial_cache.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace timedc {
namespace {

/// An in-process timedc-server: one shard on an ephemeral port, its loop on
/// its own thread. stats() is valid after stop().
class LoopbackServer {
 public:
  LoopbackServer() {
    port_ = transport_.listen(0);
    server_ = std::make_unique<ObjectServer>(transport_, SiteId{0}, 4,
                                             PushPolicy::kNone, MessageSizes{});
    server_->attach();
    thread_ = std::thread([this] { loop_.run(); });
  }

  ~LoopbackServer() {
    if (thread_.joinable()) stop();
  }

  void stop() {
    net::TcpTransport* transport = &transport_;
    loop_.post([transport] { transport->close_all(); });
    loop_.stop();
    thread_.join();
  }

  std::uint16_t port() const { return port_; }
  const ServerStats& stats() const { return server_->stats(); }

 private:
  net::EventLoop loop_;
  net::TcpTransport transport_{loop_};
  std::unique_ptr<ObjectServer> server_;
  std::thread thread_;
  std::uint16_t port_ = 0;
};

TEST(NetLoopback, TscWorkloadOverTcpIsTimedSequentiallyConsistent) {
  constexpr int kClients = 3;
  constexpr int kOpsPerClient = 8;
  const SimTime delta = SimTime::millis(200);  // far above loopback RTT

  LoopbackServer server;

  net::EventLoop loop;
  net::TcpTransport tx(loop, SimTime::millis(100));
  tx.add_route(SiteId{0}, "127.0.0.1", server.port());
  PerfectClock clock;
  std::vector<std::unique_ptr<TimedSerialCache>> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(std::make_unique<TimedSerialCache>(
        tx, SiteId{100 + static_cast<std::uint32_t>(c)}, SiteId{0}, &clock,
        delta, /*mark_old=*/true, MessageSizes{}));
    clients.back()->attach();
  }

  // The load generator's recording convention: writes at issue time, reads
  // at completion time (see tools/timedc_load.cpp).
  struct Rec {
    std::uint32_t site;
    bool is_write;
    ObjectId object;
    Value value;
    std::int64_t time_us;
  };
  std::vector<Rec> recs;
  std::vector<int> issued(kClients, 0);
  int done = 0;

  std::function<void(int)> issue = [&](int c) {
    if (issued[c] == kOpsPerClient) {
      if (++done == kClients) loop.stop();
      return;
    }
    const int seq = issued[c]++;
    const std::uint32_t site = static_cast<std::uint32_t>(c);
    const ObjectId object{static_cast<std::uint32_t>(seq % 2)};
    if (seq % 3 == 0) {
      const Value value{(c + 1) * 1000 + seq};
      const std::int64_t t = loop.now().as_micros();
      clients[c]->write(object, value, [&, c, site, object, value, t](SimTime) {
        recs.push_back(Rec{site, true, object, value, t});
        loop.post([&, c] { issue(c); });
      });
    } else {
      clients[c]->read(object, [&, c, site, object](Value v, SimTime at) {
        recs.push_back(Rec{site, false, object, v, at.as_micros()});
        loop.post([&, c] { issue(c); });
      });
    }
  };
  for (int c = 0; c < kClients; ++c) loop.post([&, c] { issue(c); });
  loop.run_after(SimTime::seconds(30), [&] { loop.stop(); });  // hang guard
  loop.run();
  server.stop();

  ASSERT_EQ(recs.size(), static_cast<std::size_t>(kClients * kOpsPerClient));
  EXPECT_EQ(tx.stats().decode_errors, 0u);
  EXPECT_EQ(tx.stats().unroutable, 0u);
  EXPECT_EQ(server.stats().rejected_unsequenced, 0u);

  // Per-site completion order is append order; bump equal-microsecond
  // neighbors to satisfy the History strictly-increasing invariant.
  HistoryBuilder builder(kClients);
  std::vector<std::int64_t> last(kClients, -1);
  for (const Rec& r : recs) {
    const std::int64_t t = std::max(r.time_us, last[r.site] + 1);
    last[r.site] = t;
    if (r.is_write) {
      builder.write(SiteId{r.site}, r.object, r.value, SimTime::micros(t));
    } else {
      builder.read(SiteId{r.site}, r.object, r.value, SimTime::micros(t));
    }
  }
  const History h = builder.build();

  // Every read on time at Delta (Definition 1), with per-read staleness
  // within budget, and the full TSC verdict (timing AND an SC witness).
  const TimedCheckResult timing = reads_on_time(h, TimedSpecPerfect{delta});
  EXPECT_TRUE(timing.all_on_time) << timing.late_reads.size() << " late reads";
  for (const ReadStaleness& s : per_read_staleness(h)) {
    EXPECT_LE(s.staleness, delta);
  }
  const TscResult tsc = check_tsc(h, TimedSpecEpsilon{delta, SimTime::zero()});
  EXPECT_TRUE(tsc.ok()) << "TSC verdict: " << to_cstring(tsc.verdict());
}

TEST(NetLoopback, UnsequencedRequestIsRejectedOverTcp) {
  LoopbackServer server;

  net::EventLoop loop;
  net::TcpTransport tx(loop, SimTime::millis(100));
  tx.add_route(SiteId{0}, "127.0.0.1", server.port());

  std::vector<Message> replies;
  tx.register_site(SiteId{500}, [&](SiteId, const Message& m) {
    replies.push_back(m);
    loop.stop();
  });
  loop.post([&] {
    // Both requests leave on one connection, so the server handles them in
    // order: the id-0 fetch is processed (and rejected) strictly before the
    // id-1 fetch whose reply ends the loop.
    tx.send_message(SiteId{500}, SiteId{0},
                    Message{FetchRequest{ObjectId{1}, SiteId{500}, 0}}, 64);
    tx.send_message(SiteId{500}, SiteId{0},
                    Message{FetchRequest{ObjectId{1}, SiteId{500}, 1}}, 64);
  });
  loop.run_after(SimTime::seconds(30), [&] { loop.stop(); });  // hang guard
  loop.run();
  server.stop();

  ASSERT_EQ(replies.size(), 1u);
  const auto* reply = std::get_if<FetchReply>(&replies[0]);
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->request_id, 1u);
  EXPECT_EQ(server.stats().rejected_unsequenced, 1u);
  EXPECT_EQ(server.stats().fetches, 1u);
}

TEST(NetLoopback, UnsequencedRequestStillServedOnRawSimPath) {
  Simulator sim;
  Network net(sim, 2, std::make_unique<FixedLatency>(SimTime::micros(10)),
              NetworkConfig{}, Rng(1));
  ObjectServer server(sim, net, SiteId{0}, 2, PushPolicy::kNone,
                      MessageSizes{});
  server.attach();

  std::vector<Message> replies;
  net.register_site(SiteId{1},
                    [&](SiteId, const Message& m) { replies.push_back(m); });
  net.send_message(SiteId{1}, SiteId{0},
                   Message{FetchRequest{ObjectId{1}, SiteId{1}, 0}}, 64);
  sim.run_until();

  ASSERT_EQ(replies.size(), 1u);
  EXPECT_NE(std::get_if<FetchReply>(&replies[0]), nullptr);
  EXPECT_EQ(server.stats().rejected_unsequenced, 0u);
  EXPECT_EQ(server.stats().fetches, 1u);
}

}  // namespace
}  // namespace timedc
