// The batched write path's three contracts, over real sockets:
//
// 1. Robust flush: a Connection whose peer socket has a tiny SO_SNDBUF and
//    a deliberately slow reader dribbles its queue out through many short
//    sendmsg() calls (with a signal storm peppering the loop thread so
//    EINTR returns are in play) and still delivers every frame
//    byte-identically, in order.
// 2. Coalescing: frames enqueued under a flush scheduler and flushed once
//    by flush_batched() produce the exact byte stream per-frame immediate
//    flushes produce, while using fewer sendmsg() calls than frames.
// 3. Reactor sharding: against a ReactorGroup of 1, 2 and 8 reactors with
//    echo servers, a pipelined burst per connection comes back complete,
//    in order, and byte-identical to the per-frame reference encoding —
//    steering and tick-end batch flushing never reorder or corrupt.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "net/connection.hpp"
#include "net/event_loop.hpp"
#include "net/reactor_group.hpp"
#include "net/wire.hpp"
#include "protocol/messages.hpp"

namespace timedc {
namespace {

/// Runs `fn` on the loop thread and returns its value (the loop must be
/// running on another thread).
template <typename F>
auto on_loop(net::EventLoop& loop, F fn) -> decltype(fn()) {
  std::promise<decltype(fn())> result;
  auto fut = result.get_future();
  loop.post([&] { result.set_value(fn()); });
  return fut.get();
}

Message test_message(Rng& rng, std::uint64_t seq) {
  // A FetchReply with multi-entry plausible timestamps: large enough that
  // a handful of frames overflows a tiny socket buffer.
  PlausibleTimestamp ts({rng.next_u64() >> 8, rng.next_u64() >> 8, seq},
                        SiteId{3});
  ObjectCopy copy{ObjectId{static_cast<std::uint32_t>(seq % 100)},
                  Value{static_cast<std::int64_t>(seq)},
                  seq,
                  SimTime::micros(10),
                  SimTime::micros(500),
                  SimTime::micros(100),
                  ts,
                  ts};
  return Message{FetchReply{copy, seq}};
}

void no_op_handler(int) {}

TEST(BatchedFlush, DribblesWholeQueueThroughTinySndbufUnderSignals) {
  // sv[0] is the Connection's side; sv[1] is a slow reader.
  int sv[2] = {-1, -1};
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, sv), 0);
  const int sndbuf = 4 * 1024;
  ASSERT_EQ(setsockopt(sv[0], SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf)),
            0);

  // SIGUSR1 with SA_RESTART cleared: any syscall the storm interrupts
  // returns EINTR instead of restarting, which is exactly the path flush()
  // must absorb.
  struct sigaction sa {};
  sa.sa_handler = no_op_handler;
  sa.sa_flags = 0;
  ASSERT_EQ(sigaction(SIGUSR1, &sa, nullptr), 0);

  net::EventLoop loop;
  std::thread loop_thread([&] { loop.run(); });
  const pthread_t loop_tid = loop_thread.native_handle();

  // Expected byte stream: the exact frames, in enqueue order.
  Rng rng(42);
  const int kFrames = 300;
  std::vector<Message> msgs;
  std::vector<std::uint8_t> expected;
  for (int i = 0; i < kFrames; ++i) {
    msgs.push_back(test_message(rng, static_cast<std::uint64_t>(i + 1)));
    wire::encode_frame(SiteId{1}, SiteId{2}, msgs.back(), expected);
  }

  std::unique_ptr<net::Connection> conn;
  on_loop(loop, [&] {
    conn = std::make_unique<net::Connection>(loop, sv[0], false);
    conn->start([](net::Connection&, const wire::FrameView&) {},
                [](net::Connection&, const char*) {});
    for (const Message& m : msgs) conn->send_frame(SiteId{1}, SiteId{2}, m);
    return true;
  });

  std::atomic<bool> storm{true};
  std::thread signal_storm([&] {
    while (storm.load(std::memory_order_relaxed)) {
      pthread_kill(loop_tid, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  // Drain slowly in small bites so the kernel buffer stays nearly full and
  // every flush() pass moves only a short prefix of the gather list.
  std::vector<std::uint8_t> received;
  std::vector<std::uint8_t> bite(512);
  while (received.size() < expected.size()) {
    const ssize_t n = read(sv[1], bite.data(), bite.size());
    if (n > 0) {
      received.insert(received.end(), bite.begin(), bite.begin() + n);
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    } else {
      ASSERT_TRUE(n < 0 && (errno == EAGAIN || errno == EINTR))
          << "reader saw errno " << errno;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  storm.store(false, std::memory_order_relaxed);
  signal_storm.join();

  ASSERT_EQ(received.size(), expected.size());
  EXPECT_TRUE(received == expected) << "delivered bytes differ";
  // Short sends actually happened: the queue could never fit in one call.
  EXPECT_GT(on_loop(loop, [&] { return conn->stats().flush_syscalls; }), 1u);

  on_loop(loop, [&] {
    conn->close("test done");
    conn.reset();
    return true;
  });
  loop.stop();
  loop_thread.join();
  close(sv[1]);
}

TEST(BatchedFlush, CoalescedFlushIsByteIdenticalToPerFrameSendsAndCheaper) {
  // Two socketpairs: one connection flushes per frame (the reference), the
  // other enqueues under a flush scheduler and flushes once.
  int ref_sv[2] = {-1, -1};
  int bat_sv[2] = {-1, -1};
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, ref_sv), 0);
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, bat_sv), 0);

  net::EventLoop loop;
  std::thread loop_thread([&] { loop.run(); });

  Rng rng(7);
  const int kFrames = 64;
  std::vector<Message> msgs;
  for (int i = 0; i < kFrames; ++i) {
    msgs.push_back(test_message(rng, static_cast<std::uint64_t>(i + 1)));
  }

  std::unique_ptr<net::Connection> ref_conn;
  std::unique_ptr<net::Connection> bat_conn;
  std::vector<net::Connection*> armed;
  const auto [ref_syscalls, bat_syscalls] = on_loop(loop, [&] {
    ref_conn = std::make_unique<net::Connection>(loop, ref_sv[0], false);
    ref_conn->start([](net::Connection&, const wire::FrameView&) {},
                    [](net::Connection&, const char*) {});
    bat_conn = std::make_unique<net::Connection>(loop, bat_sv[0], false);
    bat_conn->start([](net::Connection&, const wire::FrameView&) {},
                    [](net::Connection&, const char*) {});
    bat_conn->set_flush_scheduler(
        [&](net::Connection& c) { armed.push_back(&c); });
    for (const Message& m : msgs) {
      ref_conn->send_frame(SiteId{1}, SiteId{2}, m);  // flushes immediately
      bat_conn->send_frame(SiteId{1}, SiteId{2}, m);  // queues, arms once
    }
    // The scheduler armed exactly once for the whole burst; fire the
    // "tick end" by hand.
    EXPECT_EQ(armed.size(), 1u);
    for (net::Connection* c : armed) c->flush_batched();
    return std::make_pair(ref_conn->stats().flush_syscalls,
                          bat_conn->stats().flush_syscalls);
  });

  // The batched side used strictly fewer syscalls than frames (default
  // socketpair buffers hold the whole burst, so a single gather flush
  // suffices; the reference pays one per frame).
  EXPECT_EQ(ref_syscalls, static_cast<std::uint64_t>(kFrames));
  EXPECT_LT(bat_syscalls, static_cast<std::uint64_t>(kFrames));
  EXPECT_GE(bat_syscalls, 1u);

  auto drain = [](int fd) {
    std::vector<std::uint8_t> out;
    std::vector<std::uint8_t> buf(64 * 1024);
    for (;;) {
      const ssize_t n = read(fd, buf.data(), buf.size());
      if (n <= 0) break;
      out.insert(out.end(), buf.begin(), buf.begin() + n);
    }
    return out;
  };
  const std::vector<std::uint8_t> ref_bytes = drain(ref_sv[1]);
  const std::vector<std::uint8_t> bat_bytes = drain(bat_sv[1]);
  ASSERT_FALSE(ref_bytes.empty());
  EXPECT_TRUE(ref_bytes == bat_bytes)
      << "coalesced wire output differs from per-frame sends";

  on_loop(loop, [&] {
    ref_conn->close("done");
    bat_conn->close("done");
    ref_conn.reset();
    bat_conn.reset();
    return true;
  });
  loop.stop();
  loop_thread.join();
  close(ref_sv[1]);
  close(bat_sv[1]);
}

/// One raw blocking client: pipeline `burst` FetchRequests to `site`
/// through the shared port, read the echoed replies, return the byte
/// stream.
std::vector<std::uint8_t> echo_burst(std::uint16_t port, std::uint32_t site,
                                     std::uint32_t client_site, int burst,
                                     std::vector<std::uint8_t>& expected) {
  std::vector<std::uint8_t> request;
  expected.clear();
  for (int i = 0; i < burst; ++i) {
    const Message m{FetchRequest{ObjectId{static_cast<std::uint32_t>(i)},
                                 SiteId{client_site},
                                 static_cast<std::uint64_t>(i + 1)}};
    wire::encode_frame(SiteId{client_site}, SiteId{site}, m, request);
    // The echo server returns the identical message, re-framed from the
    // server site back to the client site.
    wire::encode_frame(SiteId{site}, SiteId{client_site}, m, expected);
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    EXPECT_GT(n, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }

  std::vector<std::uint8_t> received(expected.size());
  std::size_t got = 0;
  while (got < received.size()) {
    const ssize_t n = ::recv(fd, received.data() + got, received.size() - got, 0);
    if (n < 0 && errno == EINTR) continue;
    EXPECT_GT(n, 0);
    if (n <= 0) break;
    got += static_cast<std::size_t>(n);
  }
  ::close(fd);
  return received;
}

TEST(ReactorSharding, EchoBurstsAreOrderedAndByteIdenticalAt1_2_8Reactors) {
  for (const std::size_t reactors : {std::size_t{1}, std::size_t{2},
                                     std::size_t{8}}) {
    net::ReactorGroup group(
        reactors, [reactors](SiteId to) -> std::size_t {
          return to.value < reactors ? to.value : reactors;
        });
    // Echo servers: every reactor site returns each protocol message to
    // its sender through the normal batched send path.
    for (std::size_t i = 0; i < reactors; ++i) {
      net::TcpTransport* tx = &group.transport(i);
      const SiteId self{static_cast<std::uint32_t>(i)};
      tx->register_site(self, [tx, self](SiteId from, const Message& m) {
        tx->send_message(self, from, m, 64);
      });
    }
    const std::uint16_t port = group.listen_shared(0);
    group.start();

    // One connection per reactor site, each pipelining a burst. Whichever
    // reactor accepts, steering must land the connection on its site's
    // owner and the reply stream must come back intact.
    const int kBurst = 200;
    for (std::size_t i = 0; i < reactors; ++i) {
      std::vector<std::uint8_t> expected;
      const std::vector<std::uint8_t> received =
          echo_burst(port, static_cast<std::uint32_t>(i),
                     static_cast<std::uint32_t>(1000 + i), kBurst, expected);
      ASSERT_EQ(received.size(), expected.size()) << reactors << " reactors";
      EXPECT_TRUE(received == expected)
          << "reply stream differs at " << reactors << " reactors, site " << i;
    }

    // With more than one reactor the kernel's accept sharding makes
    // steering probabilistic per connection, but the batched flush must
    // still have coalesced: strictly fewer sendmsg calls than frames sent.
    std::uint64_t frames = 0, syscalls = 0;
    for (std::size_t i = 0; i < reactors; ++i) {
      const auto stats = on_loop(group.loop(i), [&group, i] {
        return group.transport(i).stats();
      });
      frames += stats.frames_sent;
      syscalls += stats.flush_syscalls;
    }
    EXPECT_EQ(frames, static_cast<std::uint64_t>(kBurst) * reactors);
    EXPECT_LT(syscalls, frames) << reactors << " reactors";
    group.stop();
  }
}

}  // namespace
}  // namespace timedc
