// Tests for Delta-causal broadcast: causal delivery order, deadline
// expiration, hole skipping, and the Delta tradeoff (larger lifetimes
// deliver more, smaller lifetimes deliver fresher).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "broadcast/delta_causal.hpp"

namespace timedc {
namespace {

SimTime us(std::int64_t n) { return SimTime::micros(n); }
SimTime ms(std::int64_t n) { return SimTime::millis(n); }

struct Group {
  Simulator sim;
  std::unique_ptr<Network> net;
  std::vector<std::unique_ptr<DeltaCausalEndpoint>> members;
  // Per-receiver log of (sender, payload).
  std::vector<std::vector<std::pair<std::uint32_t, std::uint64_t>>> logs;

  Group(std::size_t n, SimTime delta, std::unique_ptr<LatencyModel> latency,
        NetworkConfig config = {}, std::uint64_t seed = 1) {
    net = std::make_unique<Network>(sim, n, std::move(latency), config,
                                    Rng(seed));
    logs.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      members.push_back(std::make_unique<DeltaCausalEndpoint>(
          sim, *net, SiteId{i}, n, delta,
          [this, i](const BroadcastMessage& m, SimTime) {
            logs[i].emplace_back(m.sender.value, m.payload);
          }));
      members.back()->attach();
    }
  }
};

TEST(DeltaCausalTest, DeliversToEveryone) {
  Group g(3, SimTime::infinity(), std::make_unique<FixedLatency>(us(10)));
  g.members[0]->broadcast(42);
  g.sim.run_until();
  for (std::uint32_t i = 0; i < 3; ++i) {
    ASSERT_EQ(g.logs[i].size(), 1u);
    EXPECT_EQ(g.logs[i][0].second, 42u);
  }
  EXPECT_EQ(g.members[0]->stats().sent, 1u);
}

TEST(DeltaCausalTest, CausalOrderAcrossSenders) {
  // With wildly variable latency and no deadline, causality must still hold:
  // if site 1 broadcasts after delivering site 0's message, nobody sees
  // 1's message first.
  Group g(4, SimTime::infinity(),
          std::make_unique<UniformLatency>(us(10), us(5000)), NetworkConfig{},
          7);
  g.members[0]->broadcast(1);
  // Site 1 reacts to the delivery of payload 1.
  bool reacted = false;
  g.members[1] = std::make_unique<DeltaCausalEndpoint>(
      g.sim, *g.net, SiteId{1}, 4, SimTime::infinity(),
      [&](const BroadcastMessage& m, SimTime) {
        g.logs[1].emplace_back(m.sender.value, m.payload);
        if (m.payload == 1 && !reacted) {
          reacted = true;
          g.members[1]->broadcast(2);
        }
      });
  g.members[1]->attach();
  g.sim.run_until();
  for (std::uint32_t i = 0; i < 4; ++i) {
    int pos1 = -1, pos2 = -1;
    for (std::size_t k = 0; k < g.logs[i].size(); ++k) {
      if (g.logs[i][k].second == 1) pos1 = static_cast<int>(k);
      if (g.logs[i][k].second == 2) pos2 = static_cast<int>(k);
    }
    if (pos2 >= 0 && pos1 >= 0) {
      EXPECT_LT(pos1, pos2) << "receiver " << i;
    }
  }
}

TEST(DeltaCausalTest, FifoPerSender) {
  Group g(2, SimTime::infinity(),
          std::make_unique<UniformLatency>(us(10), us(2000)), NetworkConfig{},
          3);
  for (std::uint64_t k = 0; k < 10; ++k) g.members[0]->broadcast(k);
  g.sim.run_until();
  ASSERT_EQ(g.logs[1].size(), 10u);
  for (std::uint64_t k = 0; k < 10; ++k) EXPECT_EQ(g.logs[1][k].second, k);
}

TEST(DeltaCausalTest, LateMessagesAreDiscarded) {
  // Latency exceeds the lifetime: nothing is ever delivered remotely.
  Group g(2, us(50), std::make_unique<FixedLatency>(us(100)));
  g.members[0]->broadcast(1);
  g.sim.run_until();
  EXPECT_TRUE(g.logs[1].empty());
  EXPECT_EQ(g.members[1]->stats().discarded_late, 1u);
  // The sender still delivered locally.
  EXPECT_EQ(g.logs[0].size(), 1u);
}

TEST(DeltaCausalTest, DroppedPredecessorDoesNotBlockForever) {
  // Messages dropped by the lossy network leave holes in the sender's
  // sequence; survivors must still be delivered once each hole's deadline
  // passes, in sequence order.
  NetworkConfig lossy;
  lossy.drop_probability = 0.5;
  lossy.fifo_links = false;
  Group g2(2, ms(5), std::make_unique<FixedLatency>(us(10)), lossy, 13);
  for (std::uint64_t k = 0; k < 50; ++k) g2.members[0]->broadcast(k);
  g2.sim.run_until();
  // Roughly half arrive; all that arrived alive must have been delivered
  // (holes skipped at deadline), and delivery is in sequence order.
  EXPECT_GT(g2.logs[1].size(), 5u);
  EXPECT_LT(g2.logs[1].size(), 50u);
  for (std::size_t k = 1; k < g2.logs[1].size(); ++k) {
    EXPECT_LT(g2.logs[1][k - 1].second, g2.logs[1][k].second);
  }
}

TEST(DeltaCausalTest, LargerDeltaDeliversAtLeastAsMany) {
  std::map<std::int64_t, std::uint64_t> delivered;
  for (const std::int64_t delta_us : {100, 1000, 10000}) {
    Group g(3, us(delta_us), std::make_unique<UniformLatency>(us(50), us(3000)),
            NetworkConfig{}, 17);
    for (int round = 0; round < 20; ++round) {
      g.members[round % 3]->broadcast(static_cast<std::uint64_t>(round));
    }
    g.sim.run_until();
    std::uint64_t total = 0;
    for (const auto& m : g.members) total += m->stats().delivered;
    delivered[delta_us] = total;
  }
  EXPECT_LE(delivered[100], delivered[1000]);
  EXPECT_LE(delivered[1000], delivered[10000]);
  // At Delta = 10ms > max latency, everything is delivered: 20 sends x 3
  // receivers (sender included).
  EXPECT_EQ(delivered[10000], 60u);
}

TEST(DeltaCausalTest, DeliveredWithinDeadline) {
  Group g(3, us(2000), std::make_unique<UniformLatency>(us(100), us(5000)),
          NetworkConfig{}, 23);
  std::vector<SimTime> lateness;
  for (std::uint32_t i = 0; i < 3; ++i) {
    g.members[i] = std::make_unique<DeltaCausalEndpoint>(
        g.sim, *g.net, SiteId{i}, 3, us(2000),
        [&](const BroadcastMessage& m, SimTime at) {
          lateness.push_back(at - m.sent_at);
        });
    g.members[i]->attach();
  }
  for (int round = 0; round < 30; ++round) {
    g.members[round % 3]->broadcast(static_cast<std::uint64_t>(round));
  }
  g.sim.run_until();
  ASSERT_FALSE(lateness.empty());
  for (SimTime l : lateness) EXPECT_LE(l, us(2000));
}

}  // namespace
}  // namespace timedc
