// Unit tests for the cluster substrate: the consistent-hash ownership
// ring (cluster/ring.hpp) and the gossip membership table
// (cluster/membership.hpp).
//
// The ring's load-bearing property is DETERMINISM: timedc-load builds the
// same ring from the same member list to dispatch requests owner-aware, so
// owner_of must agree bit-for-bit across processes — no seeds, no
// iteration-order dependence. The membership table's properties are the
// SWIM anti-entropy rules: higher incarnation wins, worse status wins at
// equal incarnation, self-refutation bumps the incarnation, and the epoch
// is a monotone version counter over the alive set.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "cluster/membership.hpp"
#include "cluster/ring.hpp"

namespace timedc {
namespace {

using cluster::HashRing;
using cluster::MembershipTable;

std::vector<SiteId> sites(std::initializer_list<std::uint32_t> ids) {
  std::vector<SiteId> out;
  for (const std::uint32_t id : ids) out.push_back(SiteId{id});
  return out;
}

TEST(HashRingTest, TwoIndependentlyBuiltRingsAgreeOnEveryObject) {
  HashRing a;
  HashRing b;
  a.set_members(sites({0, 1, 2}));
  // b adds the same members one at a time, in a different order: the
  // resulting ownership must still be identical (timedc-load vs server).
  b.set_members(sites({2}));
  b.add_member(SiteId{0});
  b.add_member(SiteId{1});
  for (std::uint32_t o = 0; o < 4096; ++o) {
    EXPECT_EQ(a.owner_of(ObjectId{o}), b.owner_of(ObjectId{o})) << o;
  }
}

TEST(HashRingTest, OwnershipSpreadsAcrossMembers) {
  HashRing ring;
  ring.set_members(sites({0, 1, 2, 3}));
  std::map<std::uint32_t, std::size_t> share;
  constexpr std::uint32_t kObjects = 20000;
  for (std::uint32_t o = 0; o < kObjects; ++o) {
    ++share[ring.owner_of(ObjectId{o}).value];
  }
  ASSERT_EQ(share.size(), 4u);  // every member owns something
  for (const auto& [site, n] : share) {
    // With 64 vnodes each the worst share stays well inside 2x fair.
    EXPECT_GT(n, kObjects / 8) << "site " << site;
    EXPECT_LT(n, kObjects / 2) << "site " << site;
  }
}

TEST(HashRingTest, MembershipChangeOnlyRemapsTheChangedSlice) {
  HashRing before;
  before.set_members(sites({0, 1, 2, 3}));
  HashRing after;
  after.set_members(sites({0, 1, 2}));
  constexpr std::uint32_t kObjects = 20000;
  std::uint32_t moved = 0;
  for (std::uint32_t o = 0; o < kObjects; ++o) {
    const SiteId owner = before.owner_of(ObjectId{o});
    if (owner.value == 3) {
      // Everything the removed member owned must move...
      EXPECT_NE(after.owner_of(ObjectId{o}).value, 3u);
    } else if (after.owner_of(ObjectId{o}) != owner) {
      // ...and nothing else may.
      ++moved;
    }
  }
  EXPECT_EQ(moved, 0u);
}

TEST(HashRingTest, EpochAdvancesOnEveryMutation) {
  HashRing ring;
  const std::uint64_t e0 = ring.epoch();
  ring.set_members(sites({0, 1}));
  EXPECT_GT(ring.epoch(), e0);
  const std::uint64_t e1 = ring.epoch();
  EXPECT_TRUE(ring.add_member(SiteId{2}));
  EXPECT_GT(ring.epoch(), e1);
  const std::uint64_t e2 = ring.epoch();
  EXPECT_FALSE(ring.add_member(SiteId{2}));  // no-op, no bump
  EXPECT_EQ(ring.epoch(), e2);
  EXPECT_TRUE(ring.remove_member(SiteId{2}));
  EXPECT_GT(ring.epoch(), e2);
  EXPECT_FALSE(ring.remove_member(SiteId{2}));
}

TEST(MembershipTest, ConfiguredBaselineDoesNotBumpEpoch) {
  MembershipTable t(SiteId{0}, /*self_incarnation=*/10);
  const std::uint64_t e0 = t.epoch();
  t.add_configured(SiteId{1});
  t.add_configured(SiteId{2});
  EXPECT_EQ(t.epoch(), e0);
  EXPECT_EQ(t.alive_count(), 3u);  // self + two peers
}

TEST(MembershipTest, SilenceSuspectsAndEvidenceOfLifeRefutes) {
  MembershipTable t(SiteId{0}, 10);
  t.add_configured(SiteId{1});
  // A configured peer never heard from is NOT suspected (time 0 means
  // "no contact yet"; the dial may still be in progress).
  EXPECT_FALSE(t.suspect_silent(1'000'000, 500'000));
  EXPECT_FALSE(t.heard_from(1, /*now_us=*/100));  // already alive
  // Silent past the timeout: suspected, alive set shrinks, epoch bumps.
  const std::uint64_t e0 = t.epoch();
  EXPECT_TRUE(t.suspect_silent(/*now_us=*/1'000'000, /*timeout_us=*/500'000));
  EXPECT_EQ(t.alive_count(), 1u);
  EXPECT_GT(t.epoch(), e0);
  // A frame from the suspect clears the suspicion.
  EXPECT_TRUE(t.heard_from(1, 1'100'000));
  EXPECT_EQ(t.alive_count(), 2u);
}

TEST(MembershipTest, HigherIncarnationWinsAndEqualPrefersWorse) {
  MembershipTable t(SiteId{0}, 10);
  t.add_configured(SiteId{1});
  // A digest reporting site 1 suspect at ITS current incarnation sticks.
  const wire::MemberEntry suspect{1, 0, MembershipTable::kSuspect};
  EXPECT_TRUE(t.merge(0, {&suspect, 1}, /*now_us=*/0));
  EXPECT_EQ(t.alive_count(), 1u);
  // The same report again: no change, no epoch bump.
  const std::uint64_t e1 = t.epoch();
  EXPECT_FALSE(t.merge(0, {&suspect, 1}, 0));
  EXPECT_EQ(t.epoch(), e1);
  // Site 1 restarts with a higher incarnation: alive again, stale
  // suspicion refuted.
  const wire::MemberEntry reborn{1, 5, MembershipTable::kAlive};
  EXPECT_TRUE(t.merge(0, {&reborn, 1}, 0));
  EXPECT_EQ(t.alive_count(), 2u);
  // An OLD suspicion (lower incarnation) arriving late is ignored.
  EXPECT_FALSE(t.merge(0, {&suspect, 1}, 0));
  EXPECT_EQ(t.alive_count(), 2u);
}

TEST(MembershipTest, SelfRefutationBumpsIncarnation) {
  MembershipTable t(SiteId{0}, 10);
  // Someone gossips that WE are suspect at our own incarnation: the SWIM
  // refutation rule answers by bumping our incarnation past theirs, and we
  // stay alive in our own table.
  const wire::MemberEntry slander{0, 10, MembershipTable::kSuspect};
  t.merge(0, {&slander, 1}, 0);
  EXPECT_GT(t.self_incarnation(), 10u);
  EXPECT_EQ(t.alive_count(), 1u);
  std::vector<wire::MemberEntry> digest;
  t.fill_digest(digest);
  ASSERT_FALSE(digest.empty());
  bool found_self = false;
  for (const auto& e : digest) {
    if (e.site == 0) {
      found_self = true;
      EXPECT_EQ(e.status, MembershipTable::kAlive);
      EXPECT_GT(e.incarnation, 10u);
    }
  }
  EXPECT_TRUE(found_self);
}

TEST(MembershipTest, KillSilentPromotesSuspectsOnlyPastTheGrace) {
  MembershipTable t(SiteId{0}, 10);
  t.add_configured(SiteId{1});
  EXPECT_FALSE(t.heard_from(1, /*now_us=*/100));
  // Suspicion alone never moves ownership: the member stays in the
  // serving set through the whole suspect window plus the dead grace.
  ASSERT_TRUE(t.suspect_silent(/*now_us=*/600'000, /*timeout_us=*/500'000));
  std::vector<std::uint32_t> serving;
  t.serving_members(serving);
  EXPECT_EQ(serving, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_FALSE(t.kill_silent(/*now_us=*/900'000, /*suspect_timeout_us=*/
                             500'000, /*dead_grace_us=*/500'000));
  t.serving_members(serving);
  EXPECT_EQ(serving, (std::vector<std::uint32_t>{0, 1}));
  // Past suspect_timeout + dead_grace the suspect is promoted to dead,
  // the serving set shrinks and the epoch bumps.
  const std::uint64_t e0 = t.epoch();
  EXPECT_TRUE(t.kill_silent(1'100'000, 500'000, 500'000));
  EXPECT_GT(t.epoch(), e0);
  t.serving_members(serving);
  EXPECT_EQ(serving, (std::vector<std::uint32_t>{0}));
  // Death is sticky against silence-based resurrection, but direct
  // evidence of life (a frame from the member) brings it back.
  EXPECT_FALSE(t.kill_silent(2'000'000, 500'000, 500'000));
  EXPECT_TRUE(t.heard_from(1, 2'100'000));
  t.serving_members(serving);
  EXPECT_EQ(serving, (std::vector<std::uint32_t>{0, 1}));
}

TEST(MembershipTest, ServingMembersIsSortedAndExcludesOnlyTheDead) {
  MembershipTable t(SiteId{3}, 10);
  t.add_configured(SiteId{1});
  t.add_configured(SiteId{0});
  t.add_configured(SiteId{2});
  std::vector<std::uint32_t> serving;
  t.serving_members(serving);
  EXPECT_EQ(serving, (std::vector<std::uint32_t>{0, 1, 2, 3}));
  // A suspect member still serves (its slice must not move yet)...
  const wire::MemberEntry suspect{1, 0, MembershipTable::kSuspect};
  ASSERT_TRUE(t.merge(0, {&suspect, 1}, 0));
  t.serving_members(serving);
  EXPECT_EQ(serving, (std::vector<std::uint32_t>{0, 1, 2, 3}));
  // ...a dead one does not.
  const wire::MemberEntry dead{1, 0, MembershipTable::kDead};
  ASSERT_TRUE(t.merge(0, {&dead, 1}, 0));
  t.serving_members(serving);
  EXPECT_EQ(serving, (std::vector<std::uint32_t>{0, 2, 3}));
}

TEST(MembershipTest, MergeReportsServingSetChangesFromGossipedDeath) {
  // A death learned purely from gossip (no local timeout involved) must
  // still report "changed" so the server rebuilds its ring.
  MembershipTable t(SiteId{0}, 10);
  t.add_configured(SiteId{1});
  t.add_configured(SiteId{2});
  const wire::MemberEntry dead{2, 0, MembershipTable::kDead};
  const std::uint64_t e0 = t.epoch();
  EXPECT_TRUE(t.merge(0, {&dead, 1}, 0));
  EXPECT_GT(t.epoch(), e0);
  std::vector<std::uint32_t> serving;
  t.serving_members(serving);
  EXPECT_EQ(serving, (std::vector<std::uint32_t>{0, 1}));
  // Replaying the same digest is idempotent: no spurious rebalances.
  EXPECT_FALSE(t.merge(0, {&dead, 1}, 0));
}

TEST(MembershipTest, EpochFastForwardsToRemoteAndStaysMonotone) {
  MembershipTable t(SiteId{0}, 1);
  t.add_configured(SiteId{1});
  const wire::MemberEntry peer{1, 0, MembershipTable::kAlive};
  t.merge(/*remote_epoch=*/40, {&peer, 1}, 0);
  EXPECT_GE(t.epoch(), 40u);
  const std::uint64_t e = t.epoch();
  // A digest from the past cannot roll the epoch back.
  t.merge(/*remote_epoch=*/3, {&peer, 1}, 0);
  EXPECT_GE(t.epoch(), e);
}

TEST(MembershipTest, DigestRoundTripsThroughMerge) {
  // Two tables exchanging digests converge on the same membership view.
  MembershipTable a(SiteId{0}, 10);
  MembershipTable b(SiteId{1}, 20);
  a.add_configured(SiteId{1});
  a.add_configured(SiteId{2});
  b.add_configured(SiteId{0});

  std::vector<wire::MemberEntry> digest;
  a.fill_digest(digest);
  b.merge(a.epoch(), digest, 0);
  EXPECT_EQ(b.alive_count(), 3u);  // b learned about site 2 from a

  b.fill_digest(digest);
  a.merge(b.epoch(), digest, 0);
  EXPECT_EQ(a.alive_count(), 3u);
  EXPECT_EQ(a.epoch(), b.epoch());
}

}  // namespace
}  // namespace timedc
