// The deterministic parallel engine's contract: parallel_map results are
// bit-identical to the serial loop at any thread count, because each task
// is a pure function of its index (randomness via Rng::stream(seed, i)).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/history_gen.hpp"

namespace timedc {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::vector<std::atomic<int>> counts(257);
  pool.for_each_index(counts.size(),
                      [&](std::size_t i) { counts[i].fetch_add(1); });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPoolTest, ZeroTasksReturnsImmediately) {
  ThreadPool pool(2);
  bool ran = false;
  pool.for_each_index(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.for_each_index(1, [&](std::size_t) { seen = std::this_thread::get_id(); });
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  for (int batch = 0; batch < 20; ++batch) {
    std::atomic<std::size_t> sum{0};
    pool.for_each_index(batch + 1, [&](std::size_t i) { sum.fetch_add(i + 1); });
    const std::size_t n = static_cast<std::size_t>(batch) + 1;
    EXPECT_EQ(sum.load(), n * (n + 1) / 2);
  }
}

TEST(ThreadPoolTest, TaskExceptionIsRethrownAndPoolSurvives) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.for_each_index(8,
                          [](std::size_t i) {
                            if (i == 3) throw std::runtime_error("task 3");
                          }),
      std::runtime_error);
  // The pool must still accept work afterwards.
  std::atomic<int> ran{0};
  pool.for_each_index(4, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 4);
}

TEST(ParallelMapTest, ResultsLandAtTheirIndex) {
  const auto out = parallel_map(100, [](std::size_t i) { return i * i; }, 4);
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

// The core determinism property: identical output across thread counts,
// for tasks whose randomness comes from per-index streams.
TEST(ParallelMapTest, BitIdenticalAcrossThreadCounts) {
  for (const std::uint64_t seed : {1ull, 42ull, 20240601ull}) {
    auto task = [seed](std::size_t i) {
      Rng rng = Rng::stream(seed, i);
      // A few dependent draws so any stream-sharing bug scrambles results.
      std::uint64_t acc = 0;
      const int draws = 1 + static_cast<int>(i % 7);
      for (int d = 0; d < draws; ++d) acc ^= rng.next_u64() * (d + 1);
      return acc;
    };
    const auto serial = parallel_map(200, task, 1);
    for (const std::size_t threads : {2ull, 8ull}) {
      EXPECT_EQ(parallel_map(200, task, threads), serial)
          << "seed=" << seed << " threads=" << threads;
    }
  }
}

// Histories generated inside parallel tasks are bit-identical to serial
// generation too (this is what the fig4 audit relies on).
TEST(ParallelMapTest, HistoryGenerationMatchesSerial) {
  auto make = [](std::size_t i) {
    Rng rng = Rng::stream(99, i);
    RandomHistoryParams p;
    p.num_ops = 12;
    return random_history(p, rng).to_string();
  };
  const auto serial = parallel_map(64, make, 1);
  EXPECT_EQ(parallel_map(64, make, 8), serial);
}

TEST(RngStreamTest, StreamsAreStableAndDistinct) {
  Rng a0 = Rng::stream(7, 0);
  Rng a0_again = Rng::stream(7, 0);
  Rng a1 = Rng::stream(7, 1);
  const std::uint64_t v0 = a0.next_u64();
  EXPECT_EQ(v0, a0_again.next_u64());
  EXPECT_NE(v0, a1.next_u64());
}

}  // namespace
}  // namespace timedc
