// Membership-churn fuzz: five simulated members under random join, kill
// and refutation, gossiping digests round-robin on a shared virtual
// clock. After every convergence window the survivors must agree —
// identical serving sets, identical table epochs, and (the load-bearing
// property for rebalance) bit-identical ownership rings built
// independently from each survivor's own serving set. Across consecutive
// ring generations only the changed slice may remap: an object changes
// owner only when its old owner left the serving set or its new owner
// just joined it.
//
// No sockets, no threads: this drives the exact MembershipTable calls the
// server's heartbeat path makes (heard_from / merge / suspect_silent /
// kill_silent) with a deterministic RNG, so a convergence failure here is
// a protocol bug, not a flake.
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <vector>

#include "cluster/membership.hpp"
#include "cluster/ring.hpp"

namespace timedc {
namespace {

using cluster::HashRing;
using cluster::MembershipTable;

constexpr std::uint32_t kMembers = 5;
constexpr std::uint32_t kObjects = 2048;
constexpr std::int64_t kSuspectUs = 300'000;
constexpr std::int64_t kGraceUs = 200'000;
constexpr std::int64_t kTickUs = 50'000;

struct Node {
  std::unique_ptr<MembershipTable> table;
  bool up = true;
};

std::unique_ptr<MembershipTable> boot(std::uint32_t site,
                                      std::uint64_t incarnation) {
  auto t = std::make_unique<MembershipTable>(SiteId{site}, incarnation);
  for (std::uint32_t peer = 0; peer < kMembers; ++peer) {
    if (peer != site) t->add_configured(SiteId{peer});
  }
  return t;
}

/// One gossip tick: every live member sends its digest to every other
/// live member (receiving a frame is direct evidence of life), then each
/// runs its local failure-detector sweep. All members share `now`, so the
/// simulation is fully deterministic.
void gossip_round(std::vector<Node>& nodes, std::int64_t& now) {
  now += kTickUs;
  std::vector<wire::MemberEntry> digest;
  for (std::uint32_t from = 0; from < kMembers; ++from) {
    if (!nodes[from].up) continue;
    nodes[from].table->fill_digest(digest);
    const std::uint64_t epoch = nodes[from].table->epoch();
    for (std::uint32_t to = 0; to < kMembers; ++to) {
      if (to == from || !nodes[to].up) continue;
      nodes[to].table->heard_from(from, now);
      nodes[to].table->merge(epoch, digest, now);
    }
  }
  for (Node& n : nodes) {
    if (!n.up) continue;
    n.table->suspect_silent(now, kSuspectUs);
    n.table->kill_silent(now, kSuspectUs, kGraceUs);
  }
}

/// Enough rounds to carry a silent member through suspicion plus the dead
/// grace and then let the resulting epoch bump quiesce cluster-wide.
void converge(std::vector<Node>& nodes, std::int64_t& now) {
  const int rounds =
      static_cast<int>((kSuspectUs + kGraceUs) / kTickUs) + 3 * kMembers;
  for (int r = 0; r < rounds; ++r) gossip_round(nodes, now);
}

std::vector<SiteId> as_sites(const std::vector<std::uint32_t>& raw) {
  std::vector<SiteId> out;
  for (const std::uint32_t s : raw) out.push_back(SiteId{s});
  return out;
}

bool contains(const std::vector<std::uint32_t>& v, std::uint32_t x) {
  for (const std::uint32_t e : v) {
    if (e == x) return true;
  }
  return false;
}

TEST(ClusterChurnTest, RandomChurnConvergesToIdenticalOwnershipEverywhere) {
  std::mt19937 rng(0xC1D2u);
  std::int64_t now = 1'000'000;
  std::vector<Node> nodes;
  std::vector<std::uint64_t> incarnation(kMembers, 1);
  for (std::uint32_t s = 0; s < kMembers; ++s) {
    Node n;
    n.table = boot(s, incarnation[s]);
    nodes.push_back(std::move(n));
  }
  converge(nodes, now);

  std::vector<std::uint32_t> prev_serving;
  std::vector<std::uint32_t> prev_owner(kObjects, 0);
  bool have_prev = false;
  int kills = 0;
  int rejoins = 0;

  for (int step = 0; step < 24; ++step) {
    // One churn event: SIGKILL a live member (never the last one) or
    // restart a dead one with a fresh process whose incarnation counter
    // restarts from where ITS OWN previous life left off — the survivors
    // may hold a HIGHER incarnation (refutations bump it), so the rejoin
    // must work through direct contact + self-refutation, not through
    // digest dominance alone.
    const std::uint32_t victim = rng() % kMembers;
    std::uint32_t up_count = 0;
    for (const Node& n : nodes) up_count += n.up ? 1u : 0u;
    if (nodes[victim].up && up_count > 1) {
      nodes[victim].up = false;
      ++kills;
    } else if (!nodes[victim].up) {
      incarnation[victim] += 1 + rng() % 3;
      nodes[victim].table = boot(victim, incarnation[victim]);
      nodes[victim].up = true;
      ++rejoins;
    }
    converge(nodes, now);

    // Every survivor must hold the same serving set, the same epoch, and
    // build the same ring from its own table — seedless determinism is
    // what lets rebalance skip any coordination protocol.
    std::vector<std::uint32_t> expected;
    std::uint64_t expected_epoch = 0;
    bool first = true;
    std::vector<std::uint32_t> serving;
    for (std::uint32_t s = 0; s < kMembers; ++s) {
      if (!nodes[s].up) continue;
      nodes[s].table->serving_members(serving);
      if (first) {
        expected = serving;
        expected_epoch = nodes[s].table->epoch();
        first = false;
        // Every live member serves; every dead one does not.
        for (std::uint32_t m = 0; m < kMembers; ++m) {
          EXPECT_EQ(contains(expected, m), nodes[m].up)
              << "step " << step << " member " << m;
        }
      } else {
        EXPECT_EQ(serving, expected) << "step " << step << " site " << s;
        EXPECT_EQ(nodes[s].table->epoch(), expected_epoch)
            << "step " << step << " site " << s;
      }
    }
    ASSERT_FALSE(first);

    HashRing ring;
    ring.set_members(as_sites(expected));
    std::vector<std::uint32_t> owner(kObjects, 0);
    for (std::uint32_t o = 0; o < kObjects; ++o) {
      owner[o] = ring.owner_of(ObjectId{o}).value;
      EXPECT_TRUE(contains(expected, owner[o])) << "object " << o;
    }
    for (std::uint32_t s = 0; s < kMembers; ++s) {
      if (!nodes[s].up) continue;
      nodes[s].table->serving_members(serving);
      HashRing mine;
      mine.set_members(as_sites(serving));
      for (std::uint32_t o = 0; o < kObjects; o += 7) {
        ASSERT_EQ(mine.owner_of(ObjectId{o}).value, owner[o])
            << "step " << step << " site " << s << " object " << o;
      }
    }

    // Slice-only remap: an object may change owner only when its old
    // owner left the serving set or its new owner just joined it.
    if (have_prev && expected != prev_serving) {
      for (std::uint32_t o = 0; o < kObjects; ++o) {
        if (owner[o] == prev_owner[o]) continue;
        const bool old_left = !contains(expected, prev_owner[o]);
        const bool new_joined = !contains(prev_serving, owner[o]);
        EXPECT_TRUE(old_left || new_joined)
            << "step " << step << " object " << o << " moved "
            << prev_owner[o] << " -> " << owner[o]
            << " with both owners present in both generations";
      }
    }
    prev_serving = expected;
    prev_owner = owner;
    have_prev = true;
  }
  // The RNG schedule must actually exercise both directions of churn.
  EXPECT_GT(kills, 3);
  EXPECT_GT(rejoins, 3);
}

TEST(ClusterChurnTest, RejoinAfterRefutationStormStillConverges) {
  // Worst case for incarnation bookkeeping: a member that refuted several
  // rumors (incarnation far ahead of its process counter) dies, and its
  // replacement boots at incarnation 1. Survivors hold {dead, high-inc};
  // the replacement's digest never dominates, so rejoining leans entirely
  // on heard_from (direct frames) plus the SWIM self-refutation bump.
  std::int64_t now = 1'000'000;
  std::vector<Node> nodes;
  for (std::uint32_t s = 0; s < kMembers; ++s) {
    Node n;
    n.table = boot(s, 1);
    nodes.push_back(std::move(n));
  }
  converge(nodes, now);

  // Pump member 4's incarnation with slander at ever-higher incarnations.
  for (std::uint64_t inc = 1; inc <= 41; inc += 5) {
    const wire::MemberEntry slander{4, inc, MembershipTable::kSuspect};
    nodes[4].table->merge(nodes[0].table->epoch(), {&slander, 1}, now);
  }
  ASSERT_GT(nodes[4].table->self_incarnation(), 40u);
  converge(nodes, now);  // survivors learn the high incarnation

  nodes[4].up = false;
  converge(nodes, now);
  std::vector<std::uint32_t> serving;
  nodes[0].table->serving_members(serving);
  ASSERT_EQ(serving, (std::vector<std::uint32_t>{0, 1, 2, 3}));

  nodes[4].table = boot(4, /*incarnation=*/1);
  nodes[4].up = true;
  converge(nodes, now);
  for (std::uint32_t s = 0; s < kMembers; ++s) {
    nodes[s].table->serving_members(serving);
    EXPECT_EQ(serving, (std::vector<std::uint32_t>{0, 1, 2, 3, 4}))
        << "site " << s;
  }
  // The reborn member's incarnation ended up past every stale rumor.
  EXPECT_GT(nodes[4].table->self_incarnation(), 40u);
}

}  // namespace
}  // namespace timedc
