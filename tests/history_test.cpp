// Tests for histories, serialization legality and the causal order.
#include <gtest/gtest.h>

#include "core/causal.hpp"
#include "core/history.hpp"
#include "core/history_gen.hpp"
#include "core/serialization.hpp"

namespace timedc {
namespace {

constexpr SiteId kS0{0}, kS1{1};
constexpr ObjectId kX{23}, kY{24};
SimTime us(std::int64_t n) { return SimTime::micros(n); }

History tiny() {
  HistoryBuilder b(2);
  b.write(kS0, kX, Value{1}, us(10));   // op 0
  b.read(kS1, kX, Value{1}, us(20));    // op 1
  b.write(kS1, kY, Value{2}, us(30));   // op 2
  b.read(kS0, kY, Value{2}, us(40));    // op 3
  return b.build();
}

TEST(HistoryTest, BuilderBasics) {
  const History h = tiny();
  EXPECT_EQ(h.size(), 4u);
  EXPECT_EQ(h.num_sites(), 2u);
  EXPECT_EQ(h.site_ops(kS0).size(), 2u);
  EXPECT_EQ(h.site_ops(kS1).size(), 2u);
  EXPECT_FALSE(h.has_thin_air_read());
  EXPECT_EQ(h.op(OpIndex{0}).to_string(), "w0(X)1@10");
  EXPECT_EQ(h.op(OpIndex{1}).to_string(), "r1(X)1@20");
}

TEST(HistoryTest, ForcedSource) {
  const History h = tiny();
  EXPECT_EQ(h.forced_source(OpIndex{1}), OpIndex{0});
  EXPECT_EQ(h.forced_source(OpIndex{3}), OpIndex{2});
}

TEST(HistoryTest, InitialValueReadHasNoSource) {
  HistoryBuilder b(1);
  b.read(kS0, kX, kInitialValue, us(5));
  const History h = b.build();
  EXPECT_EQ(h.forced_source(OpIndex{0}), std::nullopt);
  EXPECT_FALSE(h.has_thin_air_read());
}

TEST(HistoryTest, ThinAirReadDetected) {
  HistoryBuilder b(1);
  b.read(kS0, kX, Value{99}, us(5));
  const History h = b.build();
  EXPECT_TRUE(h.has_thin_air_read());
}

TEST(HistoryTest, WritesToObject) {
  const History h = tiny();
  EXPECT_EQ(h.writes_to(kX).size(), 1u);
  EXPECT_EQ(h.writes_to(kY).size(), 1u);
  EXPECT_EQ(h.writes_to(ObjectId{5}).size(), 0u);
  EXPECT_EQ(h.all_writes().size(), 2u);
}

TEST(SerializationTest, LegalityAcceptsHistoryOrder) {
  const History h = tiny();
  const std::vector<OpIndex> order{OpIndex{0}, OpIndex{1}, OpIndex{2}, OpIndex{3}};
  EXPECT_TRUE(is_legal_serialization(h, order));
  EXPECT_TRUE(respects_program_order(h, order));
  EXPECT_TRUE(respects_effective_time(h, order));
  EXPECT_TRUE(is_permutation_of_history(h, order));
}

TEST(SerializationTest, LegalityRejectsStaleRead) {
  const History h = tiny();
  // Read of X before its write.
  const std::vector<OpIndex> order{OpIndex{1}, OpIndex{0}, OpIndex{2}, OpIndex{3}};
  EXPECT_FALSE(is_legal_serialization(h, order));
}

TEST(SerializationTest, ProgramOrderViolationDetected) {
  const History h = tiny();
  // Site 0's ops are 0 then 3; swapping them breaks program order.
  const std::vector<OpIndex> order{OpIndex{2}, OpIndex{3}, OpIndex{0}, OpIndex{1}};
  EXPECT_FALSE(respects_program_order(h, order));
}

TEST(SerializationTest, ReadOfInitialValueLegalOnlyBeforeWrites) {
  HistoryBuilder b(2);
  b.write(kS0, kX, Value{1}, us(10));  // op 0
  b.read(kS1, kX, Value{0}, us(20));   // op 1 reads initial value
  const History h = b.build();
  EXPECT_TRUE(is_legal_serialization(
      h, std::vector<OpIndex>{OpIndex{1}, OpIndex{0}}));
  EXPECT_FALSE(is_legal_serialization(
      h, std::vector<OpIndex>{OpIndex{0}, OpIndex{1}}));
}

TEST(SerializationTest, PermutationValidation) {
  const History h = tiny();
  EXPECT_FALSE(is_permutation_of_history(
      h, std::vector<OpIndex>{OpIndex{0}, OpIndex{1}, OpIndex{2}}));
  EXPECT_FALSE(is_permutation_of_history(
      h, std::vector<OpIndex>{OpIndex{0}, OpIndex{0}, OpIndex{2}, OpIndex{3}}));
}

TEST(CausalOrderTest, ProgramAndReadsFromEdges) {
  const History h = tiny();
  const CausalOrder co = CausalOrder::build(h);
  EXPECT_FALSE(co.cyclic());
  // w0(X)1 -> r1(X)1 (reads-from), r1 -> w1(Y)2 (program),
  // w1(Y)2 -> r0(Y)2 (reads-from), and transitively w0 -> r0.
  EXPECT_TRUE(co.precedes(OpIndex{0}, OpIndex{1}));
  EXPECT_TRUE(co.precedes(OpIndex{1}, OpIndex{2}));
  EXPECT_TRUE(co.precedes(OpIndex{2}, OpIndex{3}));
  EXPECT_TRUE(co.precedes(OpIndex{0}, OpIndex{3}));
  EXPECT_FALSE(co.precedes(OpIndex{3}, OpIndex{0}));
}

TEST(CausalOrderTest, ConcurrentOps) {
  HistoryBuilder b(2);
  b.write(kS0, kX, Value{1}, us(10));  // op 0
  b.write(kS1, kY, Value{2}, us(10));  // op 1: no interaction
  const History h = b.build();
  const CausalOrder co = CausalOrder::build(h);
  EXPECT_TRUE(co.concurrent(OpIndex{0}, OpIndex{1}));
}

TEST(CausalOrderTest, CyclicWhenReadingOwnFutureWrite) {
  // Site 0 reads X=1 before anyone writes it; site 1 writes X=1 after
  // reading site 0's Y. The reads-from edge points backward in site 0's
  // program order via site 1, creating a causal cycle.
  HistoryBuilder b(2);
  b.read(kS0, kX, Value{1}, us(10));    // op 0 reads X=1 (written later!)
  b.write(kS0, kY, Value{2}, us(20));   // op 1
  b.read(kS1, kY, Value{2}, us(30));    // op 2
  b.write(kS1, kX, Value{1}, us(40));   // op 3
  const History h = b.build();
  const CausalOrder co = CausalOrder::build(h);
  EXPECT_TRUE(co.cyclic());
  EXPECT_FALSE(passes_cc_fast_checks(h, co));
}

TEST(CausalOrderTest, HiddenWriteDetected) {
  // w(X)1 -> w(X)2 (same site), then a read of X=1 causally after both.
  HistoryBuilder b(2);
  b.write(kS0, kX, Value{1}, us(10));  // op 0
  b.write(kS0, kX, Value{2}, us(20));  // op 1
  b.read(kS1, kX, Value{2}, us(30));   // op 2: pulls w(X)2 into site 1's past
  b.read(kS1, kX, Value{1}, us(40));   // op 3: stale read of hidden write
  const History h = b.build();
  const CausalOrder co = CausalOrder::build(h);
  EXPECT_FALSE(co.cyclic());
  EXPECT_TRUE(has_causally_hidden_write(h, co));
  EXPECT_FALSE(passes_cc_fast_checks(h, co));
}

TEST(CausalOrderTest, InitReadAfterCausalWriteRejected) {
  HistoryBuilder b(1);
  b.write(kS0, kX, Value{1}, us(10));
  b.read(kS0, kX, Value{0}, us(20));  // reads initial 0 after own write
  const History h = b.build();
  const CausalOrder co = CausalOrder::build(h);
  EXPECT_FALSE(passes_cc_fast_checks(h, co));
}

TEST(HistoryGenTest, RandomHistoryIsWellFormed) {
  Rng rng(99);
  RandomHistoryParams p;
  p.num_ops = 30;
  const History h = random_history(p, rng);
  EXPECT_EQ(h.size(), 30u);
  // Program order times strictly increase (builder invariant held).
  for (std::uint32_t s = 0; s < h.num_sites(); ++s) {
    const auto& ops = h.site_ops(SiteId{s});
    for (std::size_t k = 1; k < ops.size(); ++k) {
      EXPECT_LT(h.op(ops[k - 1]).time, h.op(ops[k]).time);
    }
  }
}

TEST(HistoryGenTest, ReplicaHistoryReadsArePerSiteCoherent) {
  // A replica serves monotonically: once it applies a write it never shows
  // an older value for that object... unless a slower write arrives later.
  // We only check well-formedness and no thin-air reads here; the consistency
  // properties are exercised in checkers_test.cpp.
  Rng rng(7);
  ReplicaHistoryParams p;
  p.num_ops = 40;
  const History h = replica_history(p, rng);
  EXPECT_EQ(h.size(), 40u);
  EXPECT_FALSE(h.has_thin_air_read());
}

TEST(HistoryGenTest, AnnotateLogicalTimesRespectsCausality) {
  Rng rng(21);
  ReplicaHistoryParams p;
  p.num_ops = 25;
  const History h = annotate_logical_times(replica_history(p, rng));
  ASSERT_TRUE(h.has_logical_times());
  ASSERT_EQ(h.logical_times().size(), h.size());
  const CausalOrder co = CausalOrder::build(h);
  if (!co.cyclic()) {
    for (std::uint32_t i = 0; i < h.size(); ++i) {
      for (std::uint32_t j = 0; j < h.size(); ++j) {
        if (co.precedes(OpIndex{i}, OpIndex{j})) {
          EXPECT_NE(h.logical_times()[i].compare(h.logical_times()[j]),
                    Ordering::kAfter);
        }
      }
    }
  }
}

}  // namespace
}  // namespace timedc
