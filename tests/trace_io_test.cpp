// Tests for the trace format: round trips, parse diagnostics, and the
// invariants the parser enforces so the History builder never aborts on
// user input.
#include <gtest/gtest.h>

#include "core/history_gen.hpp"
#include "core/paper_figures.hpp"
#include "core/trace_io.hpp"

namespace timedc {
namespace {

TEST(TraceIoTest, RoundTripFigure5) {
  const History h = figure5a();
  const std::string text = write_trace(h);
  const auto parsed = parse_trace(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const History& back = *parsed.history;
  ASSERT_EQ(back.size(), h.size());
  ASSERT_EQ(back.num_sites(), h.num_sites());
  // Same multiset of operations: compare the canonical re-serialization.
  EXPECT_EQ(write_trace(back), text);
}

TEST(TraceIoTest, RoundTripRandomHistories) {
  Rng rng(5);
  for (int round = 0; round < 20; ++round) {
    RandomHistoryParams p;
    p.num_ops = 25;
    p.num_sites = 4;
    const History h = random_history(p, rng);
    const auto parsed = parse_trace(write_trace(h));
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    EXPECT_EQ(write_trace(*parsed.history), write_trace(h));
  }
}

TEST(TraceIoTest, ParsesPaperNotationObjects) {
  const auto parsed = parse_trace(
      "sites 2\n"
      "w 0 B 4 90\n"
      "r 1 B 4 120\n"
      "w 0 obj30 7 130\n");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const History& h = *parsed.history;
  EXPECT_EQ(h.op(OpIndex{0}).object, ObjectId{1});   // 'B'
  EXPECT_EQ(h.op(OpIndex{2}).object, ObjectId{30});  // obj30
}

TEST(TraceIoTest, CommentsAndBlankLines) {
  const auto parsed = parse_trace(
      "# a trace\n"
      "sites 1\n"
      "\n"
      "w 0 A 1 10   # the write\n");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.history->size(), 1u);
}

TEST(TraceIoTest, OutOfOrderLinesAreSortedByTime) {
  const auto parsed = parse_trace(
      "sites 1\n"
      "r 0 A 1 50\n"
      "w 0 A 1 10\n");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_TRUE(parsed.history->op(OpIndex{0}).is_write());
}

TEST(TraceIoTest, MissingHeaderRejected) {
  const auto parsed = parse_trace("w 0 A 1 10\n");
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("sites"), std::string::npos);
}

TEST(TraceIoTest, SiteOutOfRangeRejected) {
  const auto parsed = parse_trace("sites 2\nw 5 A 1 10\n");
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("site"), std::string::npos);
}

TEST(TraceIoTest, MalformedLineReportsLineNumber) {
  const auto parsed = parse_trace("sites 1\nw 0 A banana 10\n");
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("line 2"), std::string::npos);
}

TEST(TraceIoTest, DuplicateWrittenValueRejected) {
  const auto parsed = parse_trace(
      "sites 2\n"
      "w 0 A 7 10\n"
      "w 1 A 7 20\n");
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("twice"), std::string::npos);
}

TEST(TraceIoTest, WriteOfInitialValueRejected) {
  const auto parsed = parse_trace("sites 1\nw 0 A 0 10\n");
  EXPECT_FALSE(parsed.ok());
}

TEST(TraceIoTest, EqualTimesSameSiteRejected) {
  const auto parsed = parse_trace(
      "sites 1\n"
      "w 0 A 1 10\n"
      "r 0 A 1 10\n");
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("strictly increase"), std::string::npos);
}

TEST(TraceIoTest, UnknownDirectiveRejected) {
  const auto parsed = parse_trace("sites 1\nfrobnicate\n");
  EXPECT_FALSE(parsed.ok());
}

TEST(TraceIoTest, NegativeValuesAndTimesParse) {
  const auto parsed = parse_trace("sites 1\nw 0 A -5 10\n");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.history->op(OpIndex{0}).value, Value{-5});
}

}  // namespace
}  // namespace timedc
