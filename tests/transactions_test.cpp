// Tests for transactions and strict serializability, including the paper's
// reduction: LIN is strict serializability with single-operation
// transactions (Section 2).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/transactions.hpp"

namespace timedc {
namespace {

constexpr SiteId kP0{0}, kP1{1};
constexpr ObjectId kX{23}, kY{24};
SimTime us(std::int64_t n) { return SimTime::micros(n); }

Transaction tx(SiteId site, SimTime begin, SimTime commit,
               std::vector<TxOp> ops) {
  return Transaction{site, begin, commit, std::move(ops)};
}

TxOp w(ObjectId o, std::int64_t v) { return {OpType::kWrite, o, Value{v}}; }
TxOp r(ObjectId o, std::int64_t v) { return {OpType::kRead, o, Value{v}}; }

TEST(SserTest, SimpleTransferIsStrictlySerializable) {
  TxHistory h(2);
  h.add(tx(kP0, us(0), us(10), {w(kX, 100), w(kY, 50)}));
  h.add(tx(kP1, us(20), us(30), {r(kX, 100), r(kY, 50)}));
  const auto res = check_strict_serializable(h);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.witness, (std::vector<std::size_t>{0, 1}));
}

TEST(SserTest, FracturedReadRejected) {
  // The reader sees X from the second transfer but Y from the first:
  // no serial order explains it.
  TxHistory h(2);
  h.add(tx(kP0, us(0), us(10), {w(kX, 100), w(kY, 50)}));
  h.add(tx(kP0, us(20), us(30), {w(kX, 90), w(kY, 60)}));
  h.add(tx(kP1, us(40), us(50), {r(kX, 90), r(kY, 50)}));
  EXPECT_FALSE(check_strict_serializable(h).ok());
  EXPECT_FALSE(check_serializable(h).ok());
}

TEST(SserTest, RealTimeOrderSeparatesSerFromSser) {
  // Serializable in the order T2, T1 — but T1 committed before T2 began,
  // so strict serializability rejects what plain serializability accepts.
  TxHistory h(2);
  h.add(tx(kP0, us(0), us(10), {w(kX, 1)}));
  h.add(tx(kP1, us(20), us(30), {r(kX, 0)}));  // reads the initial value
  EXPECT_TRUE(check_serializable(h).ok());
  EXPECT_FALSE(check_strict_serializable(h).ok());
}

TEST(SserTest, OverlappingTransactionsMayCommuteEitherWay) {
  TxHistory h(2);
  h.add(tx(kP0, us(0), us(30), {w(kX, 1)}));
  h.add(tx(kP1, us(10), us(20), {r(kX, 0)}));  // overlaps: may serialize first
  EXPECT_TRUE(check_strict_serializable(h).ok());
}

TEST(SserTest, ReadYourOwnWritesInsideTransaction) {
  TxHistory h(1);
  h.add(tx(kP0, us(0), us(10), {w(kX, 1), r(kX, 1), w(kX, 2), r(kX, 2)}));
  EXPECT_TRUE(check_strict_serializable(h).ok());
}

TEST(SserTest, DirtyReadOfUncommittedNeighborImpossible) {
  // T2 claims to read a value T1 writes, but T2 also reads Y=0 which T1
  // set: T2 cannot be placed before or after T1.
  TxHistory h(2);
  h.add(tx(kP0, us(0), us(10), {w(kX, 1), w(kY, 2)}));
  h.add(tx(kP1, us(20), us(30), {r(kX, 1), r(kY, 0)}));
  EXPECT_FALSE(check_strict_serializable(h).ok());
}

TEST(SserTest, ThinAirReadRejected) {
  TxHistory h(1);
  h.add(tx(kP0, us(0), us(10), {r(kX, 99)}));
  EXPECT_FALSE(check_strict_serializable(h).ok());
}

TEST(SserTest, WitnessRespectsRealTime) {
  TxHistory h(2);
  h.add(tx(kP0, us(0), us(10), {w(kX, 1)}));
  h.add(tx(kP1, us(20), us(30), {w(kX, 2)}));
  h.add(tx(kP0, us(40), us(50), {r(kX, 2)}));
  const auto res = check_strict_serializable(h);
  ASSERT_TRUE(res.ok());
  std::vector<std::size_t> pos(h.size());
  for (std::size_t p = 0; p < res.witness.size(); ++p) pos[res.witness[p]] = p;
  for (std::size_t a = 0; a < h.size(); ++a) {
    for (std::size_t b = 0; b < h.size(); ++b) {
      if (h.precedes(a, b)) { EXPECT_LT(pos[a], pos[b]); }
    }
  }
}

// --- the paper's reduction: LIN == SSER with unary transactions ------------

class LinSserReduction : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LinSserReduction, IntervalLinIffUnarySser) {
  Rng rng(GetParam());
  constexpr std::size_t kSites = 3;
  IntervalHistory h(kSites);
  SimTime busy[kSites] = {};
  std::int64_t next_value = 1;
  std::vector<Value> written{kInitialValue};
  for (int k = 0; k < 12; ++k) {
    const auto s = static_cast<std::size_t>(rng.uniform_int(0, kSites - 1));
    const SimTime inv = busy[s] + SimTime::micros(rng.uniform_int(1, 15));
    const SimTime resp = inv + SimTime::micros(rng.uniform_int(0, 25));
    busy[s] = resp;
    const SiteId site{static_cast<std::uint32_t>(s)};
    if (rng.bernoulli(0.45)) {
      const Value v{next_value++};
      written.push_back(v);
      h.write(site, kX, v, inv, resp);
    } else {
      // Read any previously known value (often inconsistent on purpose).
      const Value v = written[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(written.size()) - 1))];
      h.read(site, kX, v, inv, resp);
    }
  }
  const bool lin = check_interval_lin(h).ok();
  const bool sser = check_strict_serializable(from_interval_history(h)).ok();
  EXPECT_EQ(lin, sser);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinSserReduction,
                         ::testing::Range<std::uint64_t>(700, 750));

}  // namespace
}  // namespace timedc
