// Tests for the shared Cristian-style SyncEstimator: the offset/epsilon
// math, outlier rejection with its fail-open escape hatch, epsilon growth
// while the time server is unreachable, and the sim/net parity contract —
// the simulator substrate (sim/clock_sync.hpp) fed through a deterministic
// network must land on bit-identical estimates to a raw estimator fed the
// same samples directly.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "clocks/sync_estimator.hpp"
#include "sim/clock_sync.hpp"

namespace timedc {
namespace {

SimTime us(std::int64_t n) { return SimTime::micros(n); }
SimTime ms(std::int64_t n) { return SimTime::millis(n); }

SyncSample sample(std::int64_t sent_hw_us, std::int64_t server_us,
                  std::int64_t receive_hw_us) {
  return SyncSample{us(sent_hw_us), us(server_us), us(receive_hw_us)};
}

TEST(SyncEstimator, UnsyncedClockHasNoBound) {
  SyncEstimator est;
  EXPECT_FALSE(est.synced());
  EXPECT_TRUE(est.error_bound(SimTime::seconds(5)).is_infinite());
  EXPECT_EQ(est.correction(), SimTime::zero());
}

TEST(SyncEstimator, CristianMidpointCorrection) {
  SyncEstimator est;
  // Hardware runs 60ms behind: request out at hw=0 (true 60ms), server
  // stamps 61ms, reply lands at hw=2ms (true 62ms). RTT = 2ms, midpoint
  // estimate of "server now" = 61ms + 1ms = 62ms, correction = 60ms.
  ASSERT_TRUE(est.on_reply(sample(0, 61000, 2000)));
  EXPECT_TRUE(est.synced());
  EXPECT_EQ(est.correction(), ms(60));
  EXPECT_EQ(est.now(us(2000)), ms(62));
  EXPECT_EQ(est.last_rtt(), ms(2));
  // eps base = (rtt + 1us) / 2, rounded up so odd RTTs stay sound.
  EXPECT_EQ(est.error_bound(us(2000)), us(1000));
}

TEST(SyncEstimator, ErrorBoundGrowsAtDriftRateUntilNextRound) {
  SyncEstimatorConfig cfg;
  cfg.drift_ppm = 200.0;
  SyncEstimator est(cfg);
  ASSERT_TRUE(est.on_reply(sample(0, 500, 1000)));
  const SimTime base = est.error_bound(us(1000));
  // 200ppm over 1s = 200us of possible extra drift.
  EXPECT_EQ(est.error_bound(us(1000) + SimTime::seconds(1)), base + us(200));
  // A fresh accepted round resets the bound to rtt/2 again.
  ASSERT_TRUE(est.on_reply(sample(2000000, 2000500, 2001000)));
  EXPECT_EQ(est.error_bound(us(2001000)), base);
}

TEST(SyncEstimator, RejectsRttOutliersOncePercentileTrained) {
  SyncEstimatorConfig cfg;
  cfg.outlier_percentile = 0.9;
  cfg.min_samples_for_rejection = 4;
  SyncEstimator est(cfg);
  // Train the window with steady 1ms RTTs.
  std::int64_t t = 0;
  for (int i = 0; i < 8; ++i, t += 10000) {
    ASSERT_TRUE(est.on_reply(sample(t, t + 500, t + 1000)));
  }
  const SimTime before = est.correction();
  // A 50ms spike carries a useless midpoint: it must be discarded and the
  // correction left untouched.
  EXPECT_FALSE(est.on_reply(sample(t, t + 30000, t + 50000)));
  EXPECT_EQ(est.rejected(), 1u);
  EXPECT_EQ(est.correction(), before);
  EXPECT_EQ(est.last_rtt(), ms(50));  // observable even when rejected
  // A normal round right after is accepted as usual.
  t += 10000;
  EXPECT_TRUE(est.on_reply(sample(t, t + 500, t + 1000)));
}

TEST(SyncEstimator, FailsOpenAfterConsecutiveRejects) {
  SyncEstimatorConfig cfg;
  cfg.outlier_percentile = 0.9;
  cfg.min_samples_for_rejection = 4;
  cfg.max_consecutive_rejects = 3;
  SyncEstimator est(cfg);
  std::int64_t t = 0;
  for (int i = 0; i < 6; ++i, t += 10000) {
    ASSERT_TRUE(est.on_reply(sample(t, t + 500, t + 1000)));
  }
  // The path re-routes: every round now takes 20ms. The first three are
  // rejected as outliers, the fourth fails open and re-trains the window.
  for (int i = 0; i < 3; ++i, t += 30000) {
    EXPECT_FALSE(est.on_reply(sample(t, t + 10000, t + 20000)));
  }
  EXPECT_TRUE(est.on_reply(sample(t, t + 10000, t + 20000)));
  EXPECT_EQ(est.rejected(), 3u);
  // The re-trained window accepts the new RTT regime immediately.
  t += 30000;
  EXPECT_TRUE(est.on_reply(sample(t, t + 10000, t + 20000)));
}

TEST(SyncEstimator, PercentileAtOneAcceptsEverything) {
  SyncEstimator est;  // default config: rejection disabled
  std::int64_t t = 0;
  for (int i = 0; i < 10; ++i, t += 10000) {
    ASSERT_TRUE(est.on_reply(sample(t, t + 500, t + 1000)));
  }
  EXPECT_TRUE(est.on_reply(sample(t, t + 300000, t + 500000)));
  EXPECT_EQ(est.rejected(), 0u);
}

// The parity contract behind src/clocks/: the simulator substrate routed
// through a deterministic fixed-latency network must produce bit-identical
// estimator state to a raw SyncEstimator fed the same samples directly.
// With latency fixed at L the sim's exchanges are fully predictable —
// request k at t = k*P, server stamp at t+L, receive at t+2L — so the
// samples can be reconstructed exactly from the clock model alone.
TEST(SyncEstimator, SimSubstrateMatchesDirectlyFedEstimator) {
  const SimTime lat = us(500);          // fixed -> RTT exactly 1ms
  const SimTime period = ms(10);
  const int exchanges = 11;             // t = 0, 10ms, ..., 100ms
  const DriftingClock hw(us(1234), 150.0);

  Simulator sim;
  Network net(sim, 2, std::make_unique<UniformLatency>(lat, lat),
              NetworkConfig{}, Rng(1));
  PerfectClock server_clock;
  TimeServer server(sim, net, SiteId{1}, &server_clock);
  server.attach();
  SyncedSiteClock clock(sim, net, SiteId{0}, SiteId{1}, &hw);
  clock.attach();
  clock.start(period);
  sim.run_until(ms(105));  // last receive at 101ms, well inside

  SyncEstimator direct;
  for (int k = 0; k < exchanges; ++k) {
    const SimTime sent = period * k;
    direct.on_reply(SyncSample{hw.read(sent), sent + lat,
                               hw.read(sent + lat * 2)});
  }

  ASSERT_EQ(clock.estimator().accepted(), direct.accepted());
  EXPECT_EQ(clock.estimator().correction(), direct.correction());
  EXPECT_EQ(clock.estimator().last_rtt(), direct.last_rtt());
  const SimTime probe = hw.read(ms(105));
  EXPECT_EQ(clock.estimator().error_bound(probe), direct.error_bound(probe));
  // And the classic Cristian accuracy bound holds end to end.
  EXPECT_LE(std::abs(clock.error().as_micros()),
            direct.last_rtt().as_micros() / 2 + 1);
}

}  // namespace
}  // namespace timedc
