// End-to-end verification of every claim the paper makes about its figures:
//   Figure 1: SC and CC hold, LIN does not; timed up to the second read only.
//   Figure 5: SC with the exact serialization 5b; TSC binds at Delta = 96
//             with a secondary threshold at 27; not LIN.
//   Figure 6: CC but not SC; TCC violated at Delta = 30 by r4(C)0@155.
#include <gtest/gtest.h>

#include "core/checkers.hpp"
#include "core/hierarchy_audit.hpp"
#include "core/paper_figures.hpp"
#include "core/render.hpp"
#include "core/serialization.hpp"

namespace timedc {
namespace {

SimTime us(std::int64_t n) { return SimTime::micros(n); }

TEST(Figure1Test, SatisfiesScAndCcButNotLin) {
  const History h = figure1();
  EXPECT_TRUE(check_sc(h).ok());
  EXPECT_TRUE(check_cc(h).ok());
  EXPECT_FALSE(check_lin(h).ok());
}

TEST(Figure1Test, TimedUpToSecondOperationOfReader) {
  const History h = figure1();
  // Prefix through the first read (ops 0..2) is on time at the figure's
  // Delta; the full execution is not.
  HistoryBuilder prefix(2);
  prefix.write(SiteId{1}, ObjectId{23}, Value{1}, us(50));
  prefix.write(SiteId{0}, ObjectId{23}, Value{7}, us(100));
  prefix.read(SiteId{1}, ObjectId{23}, Value{1}, us(150));
  EXPECT_TRUE(
      reads_on_time(prefix.build(), TimedSpecPerfect{kFigure1Delta}).all_on_time);
  const auto full = reads_on_time(h, TimedSpecPerfect{kFigure1Delta});
  EXPECT_FALSE(full.all_on_time);
  // The three late reads are the ones at 250, 350, 450.
  EXPECT_EQ(full.late_reads.size(), 3u);
}

TEST(Figure1Test, NotTscNotTccAtFigureDelta) {
  const History h = figure1();
  const TimedSpecEpsilon spec{kFigure1Delta, SimTime::zero()};
  EXPECT_FALSE(check_tsc(h, spec).ok());
  EXPECT_FALSE(check_tcc(h, spec).ok());
}

TEST(Figure5Test, SerializationFromPaperIsValid) {
  const History h = figure5a();
  const auto s5b = figure5b_serialization();
  EXPECT_TRUE(is_permutation_of_history(h, s5b));
  EXPECT_TRUE(is_legal_serialization(h, s5b));
  EXPECT_TRUE(respects_program_order(h, s5b));
  // The serialization does NOT respect real time (the paper's point about
  // w0(C)6 / w2(B)5 and r4(C)6 / w2(C)7 being reversed).
  EXPECT_FALSE(respects_effective_time(h, s5b));
}

TEST(Figure5Test, IsScAndCcButNotLin) {
  const History h = figure5a();
  EXPECT_TRUE(check_sc(h).ok());
  EXPECT_TRUE(check_cc(h).ok());
  EXPECT_FALSE(check_lin(h).ok());
}

TEST(Figure5Test, TscThresholds) {
  const History h = figure5a();
  // "If Delta = 50 this execution does not satisfy TSC" (r4(C)6@436 misses
  // w2(C)7@340).
  EXPECT_FALSE(check_tsc(h, TimedSpecEpsilon{us(50), SimTime::zero()}).ok());
  // "For Delta > 96 this execution satisfies TSC."
  EXPECT_TRUE(check_tsc(h, TimedSpecEpsilon{us(97), SimTime::zero()}).ok());
  EXPECT_EQ(min_timed_delta(h), kFigure5PrimaryThreshold);
  // "If Delta < 27 then this execution does not satisfy TSC" (r3(B)2@301
  // misses w2(B)5@274).
  EXPECT_FALSE(check_tsc(h, TimedSpecEpsilon{us(26), SimTime::zero()}).ok());
  const auto gaps = staleness_gaps(h);
  ASSERT_GE(gaps.size(), 2u);
  EXPECT_EQ(gaps[0], kFigure5PrimaryThreshold);
  EXPECT_EQ(gaps[1], kFigure5SecondaryThreshold);
}

TEST(Figure5Test, TscViolationNamesTheRightOperations) {
  const History h = figure5a();
  const auto result = reads_on_time(h, TimedSpecPerfect{us(50)});
  ASSERT_FALSE(result.all_on_time);
  ASSERT_EQ(result.late_reads.size(), 1u);
  EXPECT_EQ(h.op(result.late_reads[0].read).to_string(), "r4(C)6@436");
  ASSERT_EQ(result.late_reads[0].w_r.size(), 1u);
  EXPECT_EQ(h.op(result.late_reads[0].w_r[0]).to_string(), "w2(C)7@340");
}

TEST(Figure6Test, IsCcButNotSc) {
  const History h = figure6a();
  EXPECT_FALSE(check_sc(h).ok());
  const auto cc = check_cc(h);
  ASSERT_TRUE(cc.ok());
  // Each per-site serialization is legal and causal-order-respecting
  // (causality subsumes each site's program order).
  for (const auto& s : cc.per_site_witness) {
    EXPECT_TRUE(is_legal_serialization(h, s));
    EXPECT_TRUE(respects_program_order(h, s));
  }
}

TEST(Figure6Test, TccViolatedAtDelta30ByR4) {
  const History h = figure6a();
  const auto result =
      reads_on_time(h, TimedSpecPerfect{kFigure6TccViolationDelta});
  ASSERT_FALSE(result.all_on_time);
  bool found = false;
  for (const LateRead& lr : result.late_reads) {
    if (h.op(lr.read).to_string() == "r4(C)0@155") {
      found = true;
      ASSERT_EQ(lr.w_r.size(), 1u);
      EXPECT_EQ(h.op(lr.w_r[0]).to_string(), "w2(C)3@100");
    }
  }
  EXPECT_TRUE(found) << render_timed_result(h, result);
  EXPECT_FALSE(check_tcc(h, TimedSpecEpsilon{kFigure6TccViolationDelta,
                                             SimTime::zero()})
                   .ok());
}

TEST(Figure6Test, TccHoldsAtLargeDeltaButTscNever) {
  const History h = figure6a();
  const SimTime dmin = min_timed_delta(h);
  const TimedSpecEpsilon spec{dmin, SimTime::zero()};
  EXPECT_TRUE(check_tcc(h, spec).ok());
  // Not SC, hence not TSC at any Delta — even infinity.
  EXPECT_FALSE(
      check_tsc(h, TimedSpecEpsilon{SimTime::infinity(), SimTime::zero()}).ok());
}

TEST(Figure6Test, R4GapIs55) {
  const History h = figure6a();
  // r4(C)0@155 ignoring w2(C)3@100: on time again once Delta >= 55.
  const auto at54 = reads_on_time(h, TimedSpecPerfect{us(54)});
  bool r4_late_at_54 = false;
  for (const auto& lr : at54.late_reads) {
    if (h.op(lr.read).to_string() == "r4(C)0@155") r4_late_at_54 = true;
  }
  EXPECT_TRUE(r4_late_at_54);
  const auto at55 = reads_on_time(h, TimedSpecPerfect{us(55)});
  for (const auto& lr : at55.late_reads) {
    EXPECT_NE(h.op(lr.read).to_string(), "r4(C)0@155");
  }
}

TEST(RenderTest, TimelineMentionsEverySite) {
  const std::string art = render_timeline(figure5a());
  for (int s = 0; s < 5; ++s) {
    EXPECT_NE(art.find("site" + std::to_string(s)), std::string::npos);
  }
}

// A scaled-down Figure 4 audit: every set identity must hold and no round
// may hit the search node budget (a kLimit is "don't know", and the audit
// must never silently fold it into "not a member").
TEST(Figure4Test, SmallAuditCleanNoLimits) {
  HierarchyAuditConfig config;
  config.rounds = 120;
  config.num_threads = 2;
  const HierarchyAuditResult r = run_hierarchy_audit(config);
  EXPECT_EQ(r.violations, 0);
  EXPECT_EQ(r.limit_rounds, 0);
  // Delta = infinity columns coincide with the untimed models.
  EXPECT_EQ(r.tsc_inf, r.n_sc);
  EXPECT_EQ(r.tcc_inf, r.n_cc);
  // Hierarchy: LIN ⊆ TSC ⊆ SC ⊆ CC in counts.
  EXPECT_LE(r.n_lin, r.n_tsc);
  EXPECT_LE(r.n_tsc, r.n_sc);
  EXPECT_LE(r.n_sc, r.n_cc);
}

TEST(RenderTest, TimedResultRendering) {
  const History h = figure1();
  const auto result = reads_on_time(h, TimedSpecPerfect{kFigure1Delta});
  const std::string text = render_timed_result(h, result);
  EXPECT_NE(text.find("is late"), std::string::npos);
  EXPECT_NE(text.find("W_r"), std::string::npos);
  TimedCheckResult ok;
  EXPECT_EQ(render_timed_result(h, ok), "all reads on time\n");
}

}  // namespace
}  // namespace timedc
