// Tests for read leases (Section 5.2 "leased objects", Gray-Cheriton
// style): reads hit locally for the lease window, conflicting writes defer
// until leases expire, and the TSC timeliness guarantee strengthens — a
// leased read can never be stale at all.
#include <gtest/gtest.h>

#include <memory>

#include "core/timed.hpp"
#include "protocol/experiment.hpp"
#include "protocol/timed_serial_cache.hpp"

namespace timedc {
namespace {

SimTime us(std::int64_t n) { return SimTime::micros(n); }
SimTime ms(std::int64_t n) { return SimTime::millis(n); }

class LeaseFixture : public ::testing::Test {
 protected:
  void init(SimTime delta, SimTime lease) {
    net_ = std::make_unique<Network>(sim_, 3,
                                     std::make_unique<FixedLatency>(us(10)),
                                     NetworkConfig{}, Rng(1));
    server_ = std::make_unique<ObjectServer>(
        sim_, *net_, SiteId{2}, 2, PushPolicy::kNone, MessageSizes{},
        std::vector<SiteId>{}, ServerConfig{lease});
    server_->attach();
    for (std::uint32_t c = 0; c < 2; ++c) {
      clients_.push_back(std::make_unique<TimedSerialCache>(
          sim_, *net_, SiteId{c}, SiteId{2}, &clock_, delta,
          /*mark_old=*/true, MessageSizes{}));
      clients_.back()->attach();
    }
  }

  Value read_now(int c, ObjectId obj) {
    Value got{-1};
    clients_[c]->read(obj, [&](Value v, SimTime) { got = v; });
    sim_.run_until();
    return got;
  }

  SimTime write_timed(int c, ObjectId obj, Value v) {
    const SimTime issued = sim_.now();
    SimTime completed = SimTime::zero();
    clients_[c]->write(obj, v, [&](SimTime at) { completed = at; });
    sim_.run_until();
    return completed - issued;
  }

  void advance(SimTime by) {
    sim_.schedule_after(by, [] {});
    sim_.run_until();
  }

  Simulator sim_;
  PerfectClock clock_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<ObjectServer> server_;
  std::vector<std::unique_ptr<TimedSerialCache>> clients_;
};

TEST_F(LeaseFixture, LeasedReadHitsWithoutRevalidationWithinLease) {
  // Delta = 1ms would normally force revalidation every 1ms; a 50ms lease
  // extends omega so rule 3 never fires within it.
  init(ms(1), ms(50));
  EXPECT_EQ(read_now(0, ObjectId{0}), Value{0});
  advance(ms(10));
  EXPECT_EQ(read_now(0, ObjectId{0}), Value{0});
  EXPECT_EQ(clients_[0]->stats().cache_hits, 1u);
  EXPECT_EQ(clients_[0]->stats().validations, 0u);
  // Past the lease the usual validation resumes.
  advance(ms(60));
  EXPECT_EQ(read_now(0, ObjectId{0}), Value{0});
  EXPECT_EQ(clients_[0]->stats().validations, 1u);
}

TEST_F(LeaseFixture, WriteDefersUntilReaderLeaseExpires) {
  init(ms(1), ms(20));
  EXPECT_EQ(read_now(0, ObjectId{0}), Value{0});  // client 0 now holds a lease
  const SimTime latency = write_timed(1, ObjectId{0}, Value{5});
  // The ack waited for the remaining lease (~20ms) instead of one RTT.
  EXPECT_GT(latency, ms(15));
  EXPECT_EQ(server_->stats().writes_deferred, 1u);
  // The reader's cached omega runs to its lease expiry; once expiry + Delta
  // pass, rule 3 forces revalidation and the deferred write is visible.
  advance(ms(3));
  EXPECT_EQ(read_now(0, ObjectId{0}), Value{5});
}

TEST_F(LeaseFixture, OwnLeaseDoesNotBlockOwnWrite) {
  init(ms(1), ms(20));
  EXPECT_EQ(read_now(0, ObjectId{0}), Value{0});
  const SimTime latency = write_timed(0, ObjectId{0}, Value{5});
  EXPECT_LT(latency, ms(1));  // just the round trip
  EXPECT_EQ(server_->stats().writes_deferred, 0u);
}

TEST_F(LeaseFixture, ExpiredLeaseDoesNotBlock) {
  init(ms(1), ms(5));
  EXPECT_EQ(read_now(0, ObjectId{0}), Value{0});
  advance(ms(10));  // lease expired
  const SimTime latency = write_timed(1, ObjectId{0}, Value{5});
  EXPECT_LT(latency, ms(1));
  EXPECT_EQ(server_->stats().writes_deferred, 0u);
}

TEST_F(LeaseFixture, LeasedReadsAreNeverStale) {
  // Strong form of timeliness: while a lease is live the server defers
  // conflicting writes, so a hit can never return an overwritten value.
  init(ms(2), ms(10));
  EXPECT_EQ(read_now(0, ObjectId{0}), Value{0});
  // Client 1 tries to overwrite; the write only lands after the lease.
  clients_[1]->write(ObjectId{0}, Value{9}, [](SimTime) {});
  // Reads during the lease keep returning the leased value — and that is
  // CORRECT (the write has not happened yet, by design).
  sim_.run_until(ms(5));
  EXPECT_EQ(read_now(0, ObjectId{0}), Value{0});
  sim_.run_until();
  advance(ms(15));
  EXPECT_EQ(read_now(0, ObjectId{0}), Value{9});
}

TEST_F(LeaseFixture, CrashedServerHonorsForgottenLeasesViaGraceWindow) {
  // Leases are soft state: a crash forgets who holds them. The restarted
  // server must still keep the promise it made, so it defers ALL writes
  // for one full lease_duration after restart — by then every lease it
  // could have granted has expired on its own.
  init(ms(1), ms(20));
  EXPECT_EQ(read_now(0, ObjectId{0}), Value{0});  // client 0 holds a lease
  server_->crash();
  EXPECT_FALSE(server_->is_up());
  server_->restart();
  EXPECT_TRUE(server_->is_up());
  const SimTime restarted_at = sim_.now();
  // Client 1's write arrives right after the restart: the server no longer
  // remembers client 0's lease, but the grace window defers it anyway.
  const SimTime latency = write_timed(1, ObjectId{0}, Value{5});
  EXPECT_GT(latency, ms(15));
  EXPECT_GE(server_->stats().writes_deferred, 1u);
  EXPECT_EQ(server_->stats().crashes, 1u);
  EXPECT_EQ(server_->stats().restarts, 1u);
  // The deferred write landed only after restart + lease_duration.
  EXPECT_GE(sim_.now(), restarted_at + ms(20));
  advance(ms(3));
  EXPECT_EQ(read_now(0, ObjectId{0}), Value{5});
}

TEST(LeaseExperimentTest, LeasesTradeWriteLatencyForReadCheapness) {
  ExperimentConfig base;
  base.kind = ProtocolKind::kTimedSerial;
  base.delta = ms(2);
  base.workload.num_clients = 4;
  base.workload.num_objects = 8;
  base.workload.write_ratio = 0.1;
  base.workload.mean_think_time = ms(3);
  base.workload.horizon = ms(400);
  base.min_latency = us(100);
  base.max_latency = us(300);
  base.seed = 77;
  auto leased = base;
  leased.lease = ms(10);
  const auto plain = run_experiment(base);
  const auto with_lease = run_experiment(leased);
  // Reads get cheaper...
  EXPECT_GT(with_lease.cache.hit_ratio(), plain.cache.hit_ratio());
  // ...because writes waited for leases.
  EXPECT_GT(with_lease.server.writes_deferred, 0u);
  EXPECT_EQ(plain.server.writes_deferred, 0u);
  // Timeliness budget: a deferred write is recorded at its issue time but
  // only takes effect once the blocking leases expire, so the recorded
  // history reads on time at Delta + lease + slack (without leases the
  // lease term vanishes — see ProtocolCheckerIntegration).
  const SimTime slack = base.max_latency * 4;
  EXPECT_TRUE(reads_on_time(with_lease.history,
                            TimedSpecPerfect{leased.delta + leased.lease + slack})
                  .all_on_time);
}

}  // namespace
}  // namespace timedc
