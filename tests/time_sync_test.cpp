// Loopback tests for the TCP time-sync stack: a TimeSyncClient syncing a
// skewed hardware clock against another transport's time service over real
// sockets, the measured-epsilon contract (widening once rounds stop), and
// the AdaptiveDelta clamping rules (tighten only, floor at zero, no budget
// without a bound).
#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <memory>

#include "clocks/physical_clock.hpp"
#include "net/event_loop.hpp"
#include "net/tcp_transport.hpp"
#include "net/time_sync.hpp"

namespace timedc {
namespace {

using net::AdaptiveDelta;
using net::TimeSyncClient;
using net::TimeSyncConfig;

SimTime us(std::int64_t n) { return SimTime::micros(n); }
SimTime ms(std::int64_t n) { return SimTime::millis(n); }

/// Server and client transports share one EventLoop (the client dials the
/// server's ephemeral port over 127.0.0.1), so every TimeSyncClient method
/// runs on the loop thread as its contract requires. `until` polls on a
/// loop timer and stops the loop when satisfied or when the budget runs out.
struct SyncHarness {
  net::EventLoop loop;
  net::TcpTransport server_tx{loop};
  net::TcpTransport client_tx{loop};
  std::unique_ptr<TimeSyncClient> sync;

  explicit SyncHarness(const PhysicalClockModel* hardware,
                       TimeSyncConfig config = {}) {
    const std::uint16_t port = server_tx.listen(0);
    client_tx.add_route(SiteId{0}, "127.0.0.1", port);
    sync = std::make_unique<TimeSyncClient>(client_tx, SiteId{100}, SiteId{0},
                                            hardware, config);
  }

  void run_until(const std::function<bool()>& done, int budget_polls = 3000) {
    std::function<void(int)> poll = [&, this](int left) {
      if (done() || left == 0) {
        loop.stop();
        return;
      }
      loop.run_after(ms(2), [&poll, left] { poll(left - 1); });
    };
    loop.post([this, &poll, budget_polls] {
      sync->start();
      poll(budget_polls);
    });
    loop.run();
  }
};

TEST(TimeSync, ConvergesSkewedClockToServerTime) {
  // Hardware runs 60ms behind real time; the server's reference clock is
  // the loop's wall clock shifted by +250ms (set_time_source_offset), so
  // the total correction to discover is ~310ms.
  const DriftingClock hw(ms(-60), 0.0);
  TimeSyncConfig cfg;
  cfg.period = ms(5);
  SyncHarness h(&hw, cfg);
  h.server_tx.set_time_source_offset(ms(250));

  h.run_until([&] { return h.sync->estimator().accepted() >= 5; });
  ASSERT_TRUE(h.sync->synced());

  // Probe error on the loop thread so now() and loop.now() share an instant.
  std::int64_t err_us = 0;
  std::int64_t eps_us = 0;
  h.loop.post([&] {
    err_us = (h.sync->now() - (h.loop.now() + ms(250))).as_micros();
    eps_us = h.sync->epsilon().as_micros();
    h.loop.stop();
  });
  h.loop.run();

  // Cristian bound: |error| <= RTT/2 on a symmetric link; allow the full
  // measured RTT plus slack for scheduling noise on loaded CI hosts.
  const std::int64_t rtt_us = h.sync->estimator().max_rtt().as_micros();
  EXPECT_LE(std::abs(err_us), rtt_us + 5000);
  EXPECT_GE(eps_us, 0);
  EXPECT_LT(eps_us, 50000);  // a measured bound, not a default

  const net::TimeSyncStats stats = h.sync->stats();
  EXPECT_GE(stats.rounds_sent, stats.rounds_accepted);
  EXPECT_GE(stats.rounds_accepted, 5u);
  EXPECT_NEAR(static_cast<double>(stats.offset_us), 310000.0, 20000.0);
}

TEST(TimeSync, EpsilonWidensOnceRoundsStop) {
  const PerfectClock hw;
  TimeSyncConfig cfg;
  cfg.period = ms(5);
  SyncHarness h(&hw, cfg);
  h.run_until([&] { return h.sync->estimator().accepted() >= 2; });
  ASSERT_TRUE(h.sync->synced());
  h.loop.post([&] {
    h.sync->stop();
    h.loop.stop();
  });
  h.loop.run();

  // No more rounds will be accepted: the bound at later hardware readings
  // must keep growing at the assumed drift rate — never reporting a stale
  // bound as current — while staying finite (graceful degradation, not
  // reset to "unknown").
  const SyncEstimator& est = h.sync->estimator();
  const SimTime t0 = h.loop.now();
  const SimTime now_bound = est.error_bound(t0);
  const SimTime later = est.error_bound(t0 + SimTime::seconds(10));
  ASSERT_FALSE(later.is_infinite());
  EXPECT_GT(later, now_bound);
  // Default drift assumption is 200ppm: 10s adds ~2ms.
  EXPECT_GE(later - now_bound, us(1900));
}

TEST(TimeSync, AdaptiveDeltaGivesNoBudgetWhileUnsynced) {
  const PerfectClock hw;
  SyncHarness h(&hw);  // never started: epsilon is infinite
  AdaptiveDelta adaptive(h.sync.get());
  EXPECT_EQ(adaptive.effective(ms(100)), SimTime::zero());
  // Infinite Delta means plain SC — there is no budget to adapt.
  EXPECT_TRUE(adaptive.effective(SimTime::infinity()).is_infinite());
}

TEST(TimeSync, AdaptiveDeltaTightensButNeverExceedsConfigured) {
  const DriftingClock hw(ms(-60), 0.0);
  TimeSyncConfig cfg;
  cfg.period = ms(5);
  SyncHarness h(&hw, cfg);
  h.run_until([&] { return h.sync->estimator().accepted() >= 3; });
  ASSERT_TRUE(h.sync->synced());
  AdaptiveDelta adaptive(h.sync.get());

  const SimTime configured = ms(100);
  const SimTime effective = adaptive.effective(configured);
  // Sheds epsilon + RTT margin, both > 0 on a real link; stays positive at
  // a Delta far above loopback conditions.
  EXPECT_LT(effective, configured);
  EXPECT_GT(effective, ms(50));
  // Shedding is monotone in the budget: a tiny Delta floors at zero rather
  // than going negative (epsilon alone can swallow it).
  EXPECT_EQ(adaptive.effective(us(1)), SimTime::zero());
  EXPECT_EQ(adaptive.effective(SimTime::zero()), SimTime::zero());
}

}  // namespace
}  // namespace timedc
