// EventLoop timer edge cases (zero delay, same-deadline ordering, lazy
// cancellation, self-cancellation from inside the firing callback) and the
// Connection write-side backpressure contract: a peer that never drains its
// socket pauses our reading at the high watermark and resumes below the low
// watermark once the bytes finally move.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "net/connection.hpp"
#include "net/event_loop.hpp"
#include "protocol/messages.hpp"

namespace timedc {
namespace {

/// Runs `fn` on the loop thread and returns its value (the loop must be
/// running on another thread).
template <typename F>
auto on_loop(net::EventLoop& loop, F fn) -> decltype(fn()) {
  std::promise<decltype(fn())> result;
  auto fut = result.get_future();
  loop.post([&] { result.set_value(fn()); });
  return fut.get();
}

TEST(EventLoopTimers, ZeroDelayTimerFiresOnNextIteration) {
  net::EventLoop loop;
  int fired = 0;
  loop.run_after(SimTime::zero(), [&] {
    ++fired;
    loop.stop();
  });
  loop.run_after(SimTime::seconds(30), [&] { loop.stop(); });  // hang guard
  loop.run();
  EXPECT_EQ(fired, 1);
}

TEST(EventLoopTimers, SameDeadlineFiresInInsertionOrder) {
  net::EventLoop loop;
  std::vector<int> order;
  // Identical delays computed before either is inserted: deadline ties must
  // break by insertion sequence, deterministically.
  loop.run_after(SimTime::millis(1), [&] { order.push_back(1); });
  loop.run_after(SimTime::millis(1), [&] { order.push_back(2); });
  loop.run_after(SimTime::millis(1), [&] {
    order.push_back(3);
    loop.stop();
  });
  loop.run_after(SimTime::seconds(30), [&] { loop.stop(); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoopTimers, CancelledTimerNeverFires) {
  net::EventLoop loop;
  bool cancelled_fired = false;
  const net::EventLoop::TimerId id =
      loop.run_after(SimTime::millis(1), [&] { cancelled_fired = true; });
  EXPECT_TRUE(loop.cancel_timer(id));
  EXPECT_FALSE(loop.cancel_timer(id));  // second cancel: no longer pending
  // A later timer at a later deadline proves the loop ran past the
  // cancelled deadline without firing it.
  loop.run_after(SimTime::millis(5), [&] { loop.stop(); });
  loop.run_after(SimTime::seconds(30), [&] { loop.stop(); });
  loop.run();
  EXPECT_FALSE(cancelled_fired);
}

TEST(EventLoopTimers, CallbackCancellingItselfReturnsFalse) {
  net::EventLoop loop;
  net::EventLoop::TimerId self = 0;
  bool self_cancel_result = true;
  self = loop.run_after(SimTime::zero(), [&] {
    // By the time the callback runs the timer is no longer pending, so the
    // cancel must report false and must not break the loop.
    self_cancel_result = loop.cancel_timer(self);
    loop.stop();
  });
  loop.run_after(SimTime::seconds(30), [&] { loop.stop(); });
  loop.run();
  EXPECT_FALSE(self_cancel_result);
}

TEST(EventLoopTimers, CallbackCancellingSameDeadlineSiblingSuppressesIt) {
  net::EventLoop loop;
  bool sibling_fired = false;
  net::EventLoop::TimerId sibling = 0;
  bool cancel_result = false;
  loop.run_after(SimTime::millis(1), [&] {
    // The sibling shares this deadline and is already due; cancelling it
    // from inside the earlier-inserted callback must still suppress it.
    cancel_result = loop.cancel_timer(sibling);
  });
  sibling = loop.run_after(SimTime::millis(1), [&] { sibling_fired = true; });
  loop.run_after(SimTime::millis(5), [&] { loop.stop(); });
  loop.run_after(SimTime::seconds(30), [&] { loop.stop(); });
  loop.run();
  EXPECT_TRUE(cancel_result);
  EXPECT_FALSE(sibling_fired);
}

TEST(ConnectionBackpressure, PausesReadingAtHighWatermarkAndResumes) {
  // A unix socketpair stands in for TCP: Connection is stream-agnostic.
  // Tiny send buffer so the kernel absorbs almost nothing and queued bytes
  // land in the Connection's write buffer.
  int sv[2] = {-1, -1};
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, sv), 0);
  const int sndbuf = 8 * 1024;
  ASSERT_EQ(setsockopt(sv[0], SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf)),
            0);

  net::EventLoop loop;
  std::thread loop_thread([&] { loop.run(); });
  std::unique_ptr<net::Connection> conn;
  const Message msg{FetchRequest{ObjectId{1}, SiteId{7}, 1}};

  const bool paused = on_loop(loop, [&] {
    conn = std::make_unique<net::Connection>(loop, sv[0], false);
    conn->start([](net::Connection&, const wire::FrameView&) {},
                [](net::Connection&, const char*) {});
    // The peer never reads: keep queueing frames until the high watermark
    // pauses our read side (bounded: ~5MiB of frames clears 4MiB + sndbuf).
    for (int i = 0; i < 400000 && !conn->reading_paused(); ++i) {
      conn->send_frame(SiteId{7}, SiteId{0}, msg);
    }
    return conn->reading_paused();
  });
  EXPECT_TRUE(paused);
  EXPECT_GE(on_loop(loop, [&] { return conn->pending_write_bytes(); }),
            net::Connection::kHighWatermark);

  // Now drain the peer side until the connection's buffer falls under the
  // low watermark and reading resumes.
  std::vector<char> sink(256 * 1024);
  bool resumed = false;
  for (int spin = 0; spin < 20000 && !resumed; ++spin) {
    while (read(sv[1], sink.data(), sink.size()) > 0) {
    }
    resumed = on_loop(loop, [&] { return !conn->reading_paused(); });
  }
  EXPECT_TRUE(resumed);

  on_loop(loop, [&] {
    conn->close("test done");
    conn.reset();
    return true;
  });
  loop.stop();
  loop_thread.join();
  close(sv[1]);
}

}  // namespace
}  // namespace timedc
